(* The deterministic simulation harness, at the default (CI) budget:
   a 64-seed schedule sweep plus crash sweeps totalling >= 200 distinct
   crash points, the determinism/replay contract, and the meta-test — with
   a deliberately injected bug (the WAL skip-flush fault) the harness must
   produce a failing reproducer that replays to the same failure. The full
   overnight-scale sweep lives behind [bench/main.exe -- sim]. *)

open Aries_util
module Sim = Aries_sim.Sim
module Workload = Aries_sim.Workload

let cfg = Workload.default_cfg

let fail_with reproducers =
  List.iter (fun rp -> print_endline (Sim.reproducer_line rp)) reproducers;
  Alcotest.failf "%d failing run(s); first: %s" (List.length reproducers)
    (Sim.reproducer_line (List.hd reproducers))

(* 64 seeds, every run to completion: no stall, no exn, invariants clean,
   oracle match, no leaked latch/fix/lock/txn. *)
let test_seed_sweep () =
  let seeds = List.init 64 (fun i -> i + 1) in
  let s = Sim.seed_sweep cfg ~seeds in
  Alcotest.(check int) "runs" 64 s.Sim.sm_seed_runs;
  if s.Sim.sm_failures <> [] then fail_with s.Sim.sm_failures;
  (* the sweep must actually exercise durability machinery *)
  Alcotest.(check bool) "events seen" true (s.Sim.sm_events > 64)

(* Crash sweeps over five seeds with a per-seed budget of 60 indices:
   >= 200 distinct (seed, crash index) points, each followed by
   crash + restart + oracle check. *)
let test_crash_sweep () =
  let seeds = [ 101; 202; 303; 404; 505 ] in
  let points = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      let s = Sim.crash_sweep cfg ~seed ~budget:60 in
      points := !points + s.Sim.sm_crash_points;
      failures := !failures @ s.Sim.sm_failures)
    seeds;
  if !failures <> [] then fail_with !failures;
  Alcotest.(check bool)
    (Printf.sprintf "crash points >= 200 (got %d)" !points)
    true (!points >= 200)

(* The same two sweeps with the full commit pipeline on (group commit +
   background page cleaner): the durability contract is mode-independent —
   any transaction whose [commit] returned before the crash trip must
   survive restart, and the oracle is unchanged. The daemons also must
   drain cleanly on every completed run (a stalled daemon fails the run). *)
let gcfg = Workload.group_cfg

let test_seed_sweep_group () =
  let seeds = List.init 48 (fun i -> i + 1) in
  let s = Sim.seed_sweep gcfg ~seeds in
  Alcotest.(check int) "runs" 48 s.Sim.sm_seed_runs;
  if s.Sim.sm_failures <> [] then fail_with s.Sim.sm_failures

let test_crash_sweep_group () =
  let seeds = [ 606; 707; 808; 909 ] in
  let points = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      let s = Sim.crash_sweep gcfg ~seed ~budget:60 in
      points := !points + s.Sim.sm_crash_points;
      failures := !failures @ s.Sim.sm_failures)
    seeds;
  if !failures <> [] then fail_with !failures;
  Alcotest.(check bool)
    (Printf.sprintf "group-mode crash points >= 150 (got %d)" !points)
    true (!points >= 150)

(* A run is a pure function of (seed, cfg, crash index): byte-identical
   reports on re-execution, for both completed and crash-cut runs, in both
   commit modes (the daemons derive every choice from the scheduler). *)
let test_determinism () =
  let a = Sim.run_one cfg ~seed:7 in
  let b = Sim.run_one cfg ~seed:7 in
  Alcotest.(check bool) "completed runs identical" true (a = b);
  let a = Sim.run_one ~crash_at:41 cfg ~seed:7 in
  let b = Sim.run_one ~crash_at:41 cfg ~seed:7 in
  Alcotest.(check bool) "crash-cut runs identical" true (a = b);
  Alcotest.(check (option int)) "crash index recorded" (Some 41) a.Sim.rr_crash_at;
  let a = Sim.run_one gcfg ~seed:7 in
  let b = Sim.run_one gcfg ~seed:7 in
  Alcotest.(check bool) "group-mode completed runs identical" true (a = b);
  let a = Sim.run_one ~crash_at:41 gcfg ~seed:7 in
  let b = Sim.run_one ~crash_at:41 gcfg ~seed:7 in
  Alcotest.(check bool) "group-mode crash-cut runs identical" true (a = b)

(* Arming a crash index past the end of the run is reported, not silently
   ignored — replaying a stale reproducer against a changed tree stays loud. *)
let test_unreachable_crash_index () =
  let r = Sim.run_one ~crash_at:1_000_000 cfg ~seed:3 in
  match r.Sim.rr_failures with
  | [] -> Alcotest.fail "unreachable crash index not reported"
  | msg :: _ ->
      let mentions_never_reached =
        let sub = "never reached" in
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions never reached" true mentions_never_reached

(* The meta-test: with the WAL skip-flush fault enabled (commits are acked
   without their log force reaching stable storage), the harness MUST find
   failing crash points, print a SIM-REPRO line, and the reproducer must
   replay to the identical failure set. *)
let test_injected_fault_is_caught () =
  Fun.protect ~finally:Crashpoint.clear_faults (fun () ->
      Crashpoint.enable_fault Crashpoint.fault_wal_skip_flush;
      let s = Sim.sweep cfg ~seeds:[ 11; 12 ] ~crash_seeds:[ 11; 12 ] ~crash_budget:25 in
      match s.Sim.sm_failures with
      | [] -> Alcotest.fail "skip-flush fault escaped the harness"
      | rp :: _ ->
          let line = Sim.reproducer_line rp in
          Alcotest.(check string) "reproducer line prefix" "SIM-REPRO" (String.sub line 0 9);
          let rep = Sim.replay cfg rp in
          Alcotest.(check bool) "replay reproduces the failure" true (Sim.confirms rp rep));
  (* and with the fault cleared, the very same seed passes again *)
  let r = Sim.run_one cfg ~seed:11 in
  Alcotest.(check (list string)) "clean after fault removed" [] r.Sim.rr_failures

(* The same meta-test under group commit: the daemon's batched force goes
   through the identical instrumented choke point, so the skip-flush fault
   makes the daemon acknowledge unforced batches — the harness must catch
   that too (a group-commit bug that dropped forces must not hide from the
   sweep). *)
let test_injected_fault_is_caught_group () =
  Fun.protect ~finally:Crashpoint.clear_faults (fun () ->
      Crashpoint.enable_fault Crashpoint.fault_wal_skip_flush;
      let s = Sim.sweep gcfg ~seeds:[ 11; 12 ] ~crash_seeds:[ 11; 12 ] ~crash_budget:25 in
      match s.Sim.sm_failures with
      | [] -> Alcotest.fail "skip-flush fault escaped the group-commit harness"
      | rp :: _ ->
          let rep = Sim.replay gcfg rp in
          Alcotest.(check bool) "replay reproduces the failure" true (Sim.confirms rp rep));
  let r = Sim.run_one gcfg ~seed:11 in
  Alcotest.(check (list string)) "clean after fault removed" [] r.Sim.rr_failures

(* ------------------------------------------------------------------ *)
(* Storage-fault sweeps (PR 5): the same workloads over an adversarial
   disk — transient EIO, bit-rot, torn page/log images. The bar: every run
   either recovers exactly to the oracle or fails loudly with a typed
   [Storage_error] reproducer. Oracle mismatches, leaks, discipline
   violations and bare parser exceptions are fatal even under faults. *)

let test_fault_seed_sweep () =
  let sink = Stats.create () in
  let s =
    Stats.with_sink sink (fun () ->
        Sim.seed_sweep Workload.fault_cfg ~seeds:(List.init 32 (fun i -> i + 1)))
  in
  (match Sim.fatal_failures s with [] -> () | fs -> fail_with fs);
  (* the adversarial disk must actually have misbehaved, and bounded
     retries must have absorbed the transient errors (a completed run under
     faults implies every EIO was retried away) *)
  Alcotest.(check bool) "faults were injected" true
    (Stats.get sink Stats.disk_eio_injected > 0 && Stats.get sink Stats.disk_bit_flips > 0);
  Alcotest.(check bool) "transient EIOs were retried" true
    (Stats.get sink Stats.disk_retries > 0)

let test_fault_crash_sweep () =
  let sink = Stats.create () in
  let points = ref 0 in
  let fatal = ref [] in
  Stats.with_sink sink (fun () ->
      List.iter
        (fun seed ->
          let s = Sim.crash_sweep Workload.fault_cfg ~seed ~budget:30 in
          points := !points + s.Sim.sm_crash_points;
          fatal := !fatal @ Sim.fatal_failures s)
        [ 1101; 2202; 3303 ]);
  if !fatal <> [] then fail_with !fatal;
  Alcotest.(check bool)
    (Printf.sprintf "fault crash points >= 60 (got %d)" !points)
    true (!points >= 60);
  (* crashing mid-write over a torn-write disk must have left torn images
     for the tail scan / repair path to deal with at least once *)
  Alcotest.(check bool) "torn images or torn log tails occurred" true
    (Stats.get sink Stats.disk_torn_writes > 0
    || Stats.get sink Stats.log_tail_truncations > 0);
  (* restart re-reads pages from the adversarial disk, so at least one
     CRC-failing image must have been quarantined and rebuilt from the
     archive + log by automatic media repair (the PR 5 acceptance bar) *)
  Alcotest.(check bool)
    (Printf.sprintf "automatic media repair ran (quarantines=%d repairs=%d)"
       (Stats.get sink Stats.disk_quarantines)
       (Stats.get sink Stats.disk_repairs))
    true
    (Stats.get sink Stats.disk_repairs > 0)

let test_fault_crash_sweep_group () =
  let points = ref 0 in
  let fatal = ref [] in
  List.iter
    (fun seed ->
      let s = Sim.crash_sweep Workload.fault_group_cfg ~seed ~budget:30 in
      points := !points + s.Sim.sm_crash_points;
      fatal := !fatal @ Sim.fatal_failures s)
    [ 4404; 5505 ];
  if !fatal <> [] then fail_with !fatal;
  Alcotest.(check bool)
    (Printf.sprintf "group-mode fault crash points >= 40 (got %d)" !points)
    true (!points >= 40)

(* The pure transient-EIO storm: no stored byte is ever corrupted, so the
   runs must not merely fail loudly — they must all pass outright (bounded
   retry absorbs every injected error), including the batched commit
   pipeline whose force must delay, never drop, its batch. *)
let test_fault_eio_storm () =
  let sink = Stats.create () in
  let s =
    Stats.with_sink sink (fun () ->
        Sim.sweep Workload.fault_eio_cfg
          ~seeds:(List.init 16 (fun i -> i + 21))
          ~crash_seeds:[ 21; 22 ] ~crash_budget:20)
  in
  if s.Sim.sm_failures <> [] then fail_with s.Sim.sm_failures;
  Alcotest.(check bool) "the storm actually hit" true
    (Stats.get sink Stats.disk_eio_injected > 0);
  Alcotest.(check bool) "retries absorbed it" true (Stats.get sink Stats.disk_retries > 0)

(* Fault runs are as replayable as fault-free ones: the fault stream is a
   pure function of (run seed, cfg). *)
let test_fault_determinism () =
  let a = Sim.run_one Workload.fault_cfg ~seed:9 in
  let b = Sim.run_one Workload.fault_cfg ~seed:9 in
  Alcotest.(check bool) "fault runs identical" true (a = b);
  let a = Sim.run_one ~crash_at:23 Workload.fault_cfg ~seed:9 in
  let b = Sim.run_one ~crash_at:23 Workload.fault_cfg ~seed:9 in
  Alcotest.(check bool) "fault crash-cut runs identical" true (a = b)

(* The meta-fault: with CRC verification switched off, bit-rot flows
   straight through the codecs — the committed-state oracle (not the
   checksums) must be what catches the corruption. Detection layers may
   not silently paper over each other. Crash sweeps drive it, because only
   a post-crash restart re-reads the rotten images from disk. *)
let test_crc_disabled_meta_fault () =
  Fun.protect ~finally:Crashpoint.clear_faults (fun () ->
      Crashpoint.enable_fault Crashpoint.fault_crc_check_disabled;
      let bitrot =
        { Aries_util.Faultdisk.eio_read_p = 0.0; eio_write_p = 0.0; eio_force_p = 0.0;
          bit_flip_p = 0.25; torn_write = false; torn_append = false; stream_shuffle = false }
      in
      let cfg = { Workload.default_cfg with Workload.faults = Some bitrot } in
      let failures = ref [] in
      List.iter
        (fun seed ->
          let s = Sim.crash_sweep cfg ~seed ~budget:25 in
          failures := !failures @ s.Sim.sm_failures)
        [ 31; 32; 33 ];
      match !failures with
      | [] -> Alcotest.fail "bit-rot with CRC checks disabled escaped the oracle"
      | rp :: _ ->
          let rep = Sim.replay cfg rp in
          Alcotest.(check bool) "replay reproduces the failure" true (Sim.confirms rp rep))

(* ------------------------------------------------------------------ *)
(* Instant restart (PR 6): recovery during recovery. Phase 1 crashes the
   workload at a sampled cut; phase 2 recovers with the instant engine
   while a fresh workload runs against the still-draining Db — and the
   sweep crashes phase 2 at every sampled durability point, including
   points inside the drain itself, finishing with a classic restart.
   Every run must converge to the committed-state oracle with zero R1-R7
   violations and no leaks. *)

let test_instant_sweep () =
  let points = ref 0 and failures = ref [] in
  List.iter
    (fun seed ->
      let s = Sim.instant_sweep cfg ~seed ~budget:40 in
      points := !points + s.Sim.sm_crash_points;
      failures := !failures @ s.Sim.sm_failures)
    [ 61; 62; 63 ];
  if !failures <> [] then fail_with !failures;
  Alcotest.(check bool)
    (Printf.sprintf "instant crash points >= 60 (got %d)" !points)
    true (!points >= 60)

let test_instant_sweep_group () =
  let points = ref 0 and failures = ref [] in
  List.iter
    (fun seed ->
      let s = Sim.instant_sweep gcfg ~seed ~budget:30 in
      points := !points + s.Sim.sm_crash_points;
      failures := !failures @ s.Sim.sm_failures)
    [ 71; 72 ];
  if !failures <> [] then fail_with !failures;
  Alcotest.(check bool)
    (Printf.sprintf "group-mode instant crash points >= 30 (got %d)" !points)
    true (!points >= 30)

(* Two-phase instant runs are as deterministic as plain ones, and the
   reproducer round-trips through replay. *)
let test_instant_determinism () =
  let a = Sim.run_one_instant cfg ~seed:7 ~crash_at:5 in
  let b = Sim.run_one_instant cfg ~seed:7 ~crash_at:5 in
  Alcotest.(check bool) "instant runs identical" true (a = b);
  Alcotest.(check (option int)) "cut recorded" (Some 5) a.Sim.rr_instant_cut;
  let a = Sim.run_one_instant ~crash_at2:3 cfg ~seed:7 ~crash_at:5 in
  let b = Sim.run_one_instant ~crash_at2:3 cfg ~seed:7 ~crash_at:5 in
  Alcotest.(check bool) "recovery-crash runs identical" true (a = b);
  Alcotest.(check (option int)) "second crash recorded" (Some 3) a.Sim.rr_crash_at;
  (* a reproducer carrying both indices replays to the same report *)
  let rp =
    {
      Sim.rp_seed = 7;
      rp_crash_at = Some 3;
      rp_instant_cut = Some 5;
      rp_failures = a.Sim.rr_failures;
      rp_trace = [];
      rp_event_dump = [];
    }
  in
  let rep = Sim.replay cfg rp in
  Alcotest.(check bool) "replay matches" true (rep = a)

(* A harder cfg: more fibers and txns, tighter pool, hotter yields — the
   shape the bench entry scales up. One seed keeps CI fast. *)
let test_stress_cfg () =
  let cfg =
    {
      cfg with
      Workload.fibers = 5;
      txns_per_fiber = 8;
      max_ops_per_txn = 6;
      pool_capacity = 8;
      yield_probability = 0.35;
      steal_probability = 0.25;
    }
  in
  let s = Sim.sweep cfg ~seeds:[ 900 ] ~crash_seeds:[ 901 ] ~crash_budget:40 in
  if s.Sim.sm_failures <> [] then fail_with s.Sim.sm_failures

let () =
  Alcotest.run "sim"
    [
      ( "sim",
        [
          Alcotest.test_case "seed sweep (64 seeds)" `Quick test_seed_sweep;
          Alcotest.test_case "crash sweep (>=200 points)" `Quick test_crash_sweep;
          Alcotest.test_case "seed sweep, group commit + cleaner" `Quick
            test_seed_sweep_group;
          Alcotest.test_case "crash sweep, group commit + cleaner (>=150 points)" `Quick
            test_crash_sweep_group;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "unreachable crash index" `Quick test_unreachable_crash_index;
          Alcotest.test_case "injected skip-flush fault is caught" `Quick
            test_injected_fault_is_caught;
          Alcotest.test_case "injected skip-flush fault is caught (group commit)" `Quick
            test_injected_fault_is_caught_group;
          Alcotest.test_case "stress cfg" `Quick test_stress_cfg;
        ] );
      ( "instant",
        [
          Alcotest.test_case "recovery-during-recovery sweep (>=60 points)" `Quick
            test_instant_sweep;
          Alcotest.test_case "recovery-during-recovery sweep, group commit (>=30 points)"
            `Quick test_instant_sweep_group;
          Alcotest.test_case "instant determinism + replay" `Quick test_instant_determinism;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fault seed sweep (32 seeds)" `Quick test_fault_seed_sweep;
          Alcotest.test_case "fault crash sweep (>=60 points)" `Quick test_fault_crash_sweep;
          Alcotest.test_case "fault crash sweep, group commit (>=40 points)" `Quick
            test_fault_crash_sweep_group;
          Alcotest.test_case "transient-EIO storm passes outright" `Quick test_fault_eio_storm;
          Alcotest.test_case "fault determinism" `Quick test_fault_determinism;
          Alcotest.test_case "crc.check-disabled meta-fault is caught by the oracle" `Quick
            test_crc_disabled_meta_fault;
        ] );
    ]
