(* The deterministic simulation harness, at the default (CI) budget:
   a 64-seed schedule sweep plus crash sweeps totalling >= 200 distinct
   crash points, the determinism/replay contract, and the meta-test — with
   a deliberately injected bug (the WAL skip-flush fault) the harness must
   produce a failing reproducer that replays to the same failure. The full
   overnight-scale sweep lives behind [bench/main.exe -- sim]. *)

open Aries_util
module Sim = Aries_sim.Sim
module Workload = Aries_sim.Workload

let cfg = Workload.default_cfg

let fail_with reproducers =
  List.iter (fun rp -> print_endline (Sim.reproducer_line rp)) reproducers;
  Alcotest.failf "%d failing run(s); first: %s" (List.length reproducers)
    (Sim.reproducer_line (List.hd reproducers))

(* 64 seeds, every run to completion: no stall, no exn, invariants clean,
   oracle match, no leaked latch/fix/lock/txn. *)
let test_seed_sweep () =
  let seeds = List.init 64 (fun i -> i + 1) in
  let s = Sim.seed_sweep cfg ~seeds in
  Alcotest.(check int) "runs" 64 s.Sim.sm_seed_runs;
  if s.Sim.sm_failures <> [] then fail_with s.Sim.sm_failures;
  (* the sweep must actually exercise durability machinery *)
  Alcotest.(check bool) "events seen" true (s.Sim.sm_events > 64)

(* Crash sweeps over five seeds with a per-seed budget of 60 indices:
   >= 200 distinct (seed, crash index) points, each followed by
   crash + restart + oracle check. *)
let test_crash_sweep () =
  let seeds = [ 101; 202; 303; 404; 505 ] in
  let points = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      let s = Sim.crash_sweep cfg ~seed ~budget:60 in
      points := !points + s.Sim.sm_crash_points;
      failures := !failures @ s.Sim.sm_failures)
    seeds;
  if !failures <> [] then fail_with !failures;
  Alcotest.(check bool)
    (Printf.sprintf "crash points >= 200 (got %d)" !points)
    true (!points >= 200)

(* The same two sweeps with the full commit pipeline on (group commit +
   background page cleaner): the durability contract is mode-independent —
   any transaction whose [commit] returned before the crash trip must
   survive restart, and the oracle is unchanged. The daemons also must
   drain cleanly on every completed run (a stalled daemon fails the run). *)
let gcfg = Workload.group_cfg

let test_seed_sweep_group () =
  let seeds = List.init 48 (fun i -> i + 1) in
  let s = Sim.seed_sweep gcfg ~seeds in
  Alcotest.(check int) "runs" 48 s.Sim.sm_seed_runs;
  if s.Sim.sm_failures <> [] then fail_with s.Sim.sm_failures

let test_crash_sweep_group () =
  let seeds = [ 606; 707; 808; 909 ] in
  let points = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      let s = Sim.crash_sweep gcfg ~seed ~budget:60 in
      points := !points + s.Sim.sm_crash_points;
      failures := !failures @ s.Sim.sm_failures)
    seeds;
  if !failures <> [] then fail_with !failures;
  Alcotest.(check bool)
    (Printf.sprintf "group-mode crash points >= 150 (got %d)" !points)
    true (!points >= 150)

(* A run is a pure function of (seed, cfg, crash index): byte-identical
   reports on re-execution, for both completed and crash-cut runs, in both
   commit modes (the daemons derive every choice from the scheduler). *)
let test_determinism () =
  let a = Sim.run_one cfg ~seed:7 in
  let b = Sim.run_one cfg ~seed:7 in
  Alcotest.(check bool) "completed runs identical" true (a = b);
  let a = Sim.run_one ~crash_at:41 cfg ~seed:7 in
  let b = Sim.run_one ~crash_at:41 cfg ~seed:7 in
  Alcotest.(check bool) "crash-cut runs identical" true (a = b);
  Alcotest.(check (option int)) "crash index recorded" (Some 41) a.Sim.rr_crash_at;
  let a = Sim.run_one gcfg ~seed:7 in
  let b = Sim.run_one gcfg ~seed:7 in
  Alcotest.(check bool) "group-mode completed runs identical" true (a = b);
  let a = Sim.run_one ~crash_at:41 gcfg ~seed:7 in
  let b = Sim.run_one ~crash_at:41 gcfg ~seed:7 in
  Alcotest.(check bool) "group-mode crash-cut runs identical" true (a = b)

(* Arming a crash index past the end of the run is reported, not silently
   ignored — replaying a stale reproducer against a changed tree stays loud. *)
let test_unreachable_crash_index () =
  let r = Sim.run_one ~crash_at:1_000_000 cfg ~seed:3 in
  match r.Sim.rr_failures with
  | [] -> Alcotest.fail "unreachable crash index not reported"
  | msg :: _ ->
      let mentions_never_reached =
        let sub = "never reached" in
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions never reached" true mentions_never_reached

(* The meta-test: with the WAL skip-flush fault enabled (commits are acked
   without their log force reaching stable storage), the harness MUST find
   failing crash points, print a SIM-REPRO line, and the reproducer must
   replay to the identical failure set. *)
let test_injected_fault_is_caught () =
  Fun.protect ~finally:Crashpoint.clear_faults (fun () ->
      Crashpoint.enable_fault Crashpoint.fault_wal_skip_flush;
      let s = Sim.sweep cfg ~seeds:[ 11; 12 ] ~crash_seeds:[ 11; 12 ] ~crash_budget:25 in
      match s.Sim.sm_failures with
      | [] -> Alcotest.fail "skip-flush fault escaped the harness"
      | rp :: _ ->
          let line = Sim.reproducer_line rp in
          Alcotest.(check string) "reproducer line prefix" "SIM-REPRO" (String.sub line 0 9);
          let rep = Sim.replay cfg rp in
          Alcotest.(check bool) "replay reproduces the failure" true (Sim.confirms rp rep));
  (* and with the fault cleared, the very same seed passes again *)
  let r = Sim.run_one cfg ~seed:11 in
  Alcotest.(check (list string)) "clean after fault removed" [] r.Sim.rr_failures

(* The same meta-test under group commit: the daemon's batched force goes
   through the identical instrumented choke point, so the skip-flush fault
   makes the daemon acknowledge unforced batches — the harness must catch
   that too (a group-commit bug that dropped forces must not hide from the
   sweep). *)
let test_injected_fault_is_caught_group () =
  Fun.protect ~finally:Crashpoint.clear_faults (fun () ->
      Crashpoint.enable_fault Crashpoint.fault_wal_skip_flush;
      let s = Sim.sweep gcfg ~seeds:[ 11; 12 ] ~crash_seeds:[ 11; 12 ] ~crash_budget:25 in
      match s.Sim.sm_failures with
      | [] -> Alcotest.fail "skip-flush fault escaped the group-commit harness"
      | rp :: _ ->
          let rep = Sim.replay gcfg rp in
          Alcotest.(check bool) "replay reproduces the failure" true (Sim.confirms rp rep));
  let r = Sim.run_one gcfg ~seed:11 in
  Alcotest.(check (list string)) "clean after fault removed" [] r.Sim.rr_failures

(* A harder cfg: more fibers and txns, tighter pool, hotter yields — the
   shape the bench entry scales up. One seed keeps CI fast. *)
let test_stress_cfg () =
  let cfg =
    {
      cfg with
      Workload.fibers = 5;
      txns_per_fiber = 8;
      max_ops_per_txn = 6;
      pool_capacity = 8;
      yield_probability = 0.35;
      steal_probability = 0.25;
    }
  in
  let s = Sim.sweep cfg ~seeds:[ 900 ] ~crash_seeds:[ 901 ] ~crash_budget:40 in
  if s.Sim.sm_failures <> [] then fail_with s.Sim.sm_failures

let () =
  Alcotest.run "sim"
    [
      ( "sim",
        [
          Alcotest.test_case "seed sweep (64 seeds)" `Quick test_seed_sweep;
          Alcotest.test_case "crash sweep (>=200 points)" `Quick test_crash_sweep;
          Alcotest.test_case "seed sweep, group commit + cleaner" `Quick
            test_seed_sweep_group;
          Alcotest.test_case "crash sweep, group commit + cleaner (>=150 points)" `Quick
            test_crash_sweep_group;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "unreachable crash index" `Quick test_unreachable_crash_index;
          Alcotest.test_case "injected skip-flush fault is caught" `Quick
            test_injected_fault_is_caught;
          Alcotest.test_case "injected skip-flush fault is caught (group commit)" `Quick
            test_injected_fault_is_caught_group;
          Alcotest.test_case "stress cfg" `Quick test_stress_cfg;
        ] );
    ]
