(* Crash / restart recovery: durability of committed work, rollback of
   losers, repeating history, idempotency under repeated crashes, fuzzy
   checkpoints, in-doubt transactions, media recovery. *)

open Aries_util
module Logmgr = Aries_wal.Logmgr
module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Restart = Aries_recovery.Restart
module Media = Aries_recovery.Media
module Bufpool = Aries_buffer.Bufpool
module Disk = Aries_page.Disk
module Page = Aries_page.Page
module Db = Aries_db.Db

let rid i = { Ids.rid_page = 1000 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?(page_size = 384) () =
  let db = Db.create ~page_size () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"t" ~unique:true))
  in
  (db, tree)

let reopen db = Btree.open_existing db.Db.benv

let crash_restart ?config db =
  let db' = Db.crash ?config db in
  let report = Db.run_exn db' (fun () -> Db.restart db') in
  (db', report)

let test_committed_survive () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 199 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  (* no page flushes: everything must come back through redo *)
  let db', _report = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "all committed keys recovered" 200 (List.length (Btree.to_list tree'))

let test_uncommitted_rolled_back () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 49 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  (* in-flight transaction: insert more but crash before commit, with the
     log tail flushed so its records survive the crash *)
  ignore
    (Db.run db (fun () ->
         let txn = Txnmgr.begin_txn db.Db.mgr in
         for i = 50 to 149 do
           Btree.insert tree txn ~value:(v i) ~rid:(rid i)
         done;
         Logmgr.flush db.Db.wal
         (* crash before commit: fiber just ends, txn stays active *)));
  let db', report = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "only committed keys" 50 (List.length (Btree.to_list tree'));
  Alcotest.(check int) "one loser" 1 (List.length report.Restart.rp_losers)

let test_steal_forces_undo () =
  (* dirty uncommitted pages written to disk (steal) must be rolled back *)
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 29 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  ignore
    (Db.run db (fun () ->
         let txn = Txnmgr.begin_txn db.Db.mgr in
         for i = 30 to 99 do
           Btree.insert tree txn ~value:(v i) ~rid:(rid i)
         done;
         (* steal: push every dirty page (and first the log, by WAL) out *)
         Bufpool.flush_all db.Db.pool));
  let db', _ = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "stolen uncommitted undone" 30 (List.length (Btree.to_list tree'))

let test_no_force_redo () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 99 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let report_db, report = crash_restart db in
  Alcotest.(check bool) "redo applied work" true (report.Restart.rp_redos_applied > 0);
  let tree' = reopen report_db ix in
  Alcotest.(check int) "redo rebuilt" 100 (List.length (Btree.to_list tree'))

let test_restart_idempotent () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 99 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  ignore
    (Db.run db (fun () ->
         let txn = Txnmgr.begin_txn db.Db.mgr in
         for i = 100 to 159 do
           Btree.insert tree txn ~value:(v i) ~rid:(rid i)
         done;
         Logmgr.flush db.Db.wal));
  let db1, _ = crash_restart db in
  (* crash immediately again, twice *)
  let db2, _ = crash_restart db1 in
  let db3, _ = crash_restart db2 in
  let tree' = reopen db3 ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "stable contents" 100 (List.length (Btree.to_list tree'))

let test_checkpoint_bounds_redo () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 99 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  (* flush pages and checkpoint: the earlier work must not be redone *)
  Bufpool.flush_all db.Db.pool;
  Db.checkpoint db;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 100 to 119 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let db', report = crash_restart db in
  let tree' = reopen db' ix in
  Alcotest.(check int) "contents" 120 (List.length (Btree.to_list tree'));
  Alcotest.(check bool) "redo scan bounded by checkpoint" true
    (report.Restart.rp_records_redo_scanned < 80)

let test_smo_crash_mid_propagation () =
  (* crash with an SMO incomplete on disk: the leaf-level split happened and
     was flushed, the parent posting never made it. Restart must undo the
     SMO page-oriented and roll back the loser. *)
  let db, tree = fresh ~page_size:384 () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 39 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Btree.set_smo_pause db.Db.benv
    (Some
       (fun () ->
         (* flush everything mid-SMO, then die *)
         Logmgr.flush db.Db.wal;
         Bufpool.flush_all db.Db.pool;
         raise Exit));
  let r =
    Db.run db (fun () ->
        let txn = Txnmgr.begin_txn db.Db.mgr in
        (try
           for i = 40 to 200 do
             Btree.insert tree txn ~value:(v i) ~rid:(rid i)
           done
         with Exit -> ());
        ())
  in
  Alcotest.(check bool) "workload fiber finished" true
    (match r.Aries_sched.Sched.outcome with Aries_sched.Sched.Completed -> true | _ -> false);
  let db', _report = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "only committed keys survive" 40 (List.length (Btree.to_list tree'))

let test_indoubt_keeps_locks () =
  let db, tree = fresh () in
  ignore
    (Db.run db (fun () ->
         let txn = Txnmgr.begin_txn db.Db.mgr in
         (* the record manager's commit-duration X record lock is the key
            lock under data-only locking; take it as the Table layer would *)
         Txnmgr.lock db.Db.mgr txn (Aries_lock.Lockmgr.Rid (rid 1)) Aries_lock.Lockmgr.X
           Aries_lock.Lockmgr.Commit;
         Btree.insert tree txn ~value:"held" ~rid:(rid 1);
         Txnmgr.prepare db.Db.mgr txn));
  let db', report = crash_restart db in
  Alcotest.(check int) "one in-doubt txn" 1 (List.length report.Restart.rp_indoubt);
  Alcotest.(check bool) "locks reacquired" true (report.Restart.rp_locks_reacquired > 0);
  let id = List.hd report.Restart.rp_indoubt in
  Alcotest.(check bool) "lock held by in-doubt txn" true
    (Aries_lock.Lockmgr.held_count db'.Db.locks ~txn:id > 0)

let test_crash_during_restart () =
  (* interrupt restart recovery itself (a crash during recovery) and run it
     again: repeating history makes the second attempt land in the same
     state as an uninterrupted one *)
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 149 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         for i = 150 to 239 do
           Btree.insert tree t ~value:(v i) ~rid:(rid i)
         done;
         Logmgr.flush db.Db.wal));
  let db1 = Db.crash db in
  (* the undo pass writes CLRs; a yield probability plus a step budget cuts
     the restart somewhere in the middle *)
  let r =
    Db.run db1 ~yield_probability:0.5 ~max_steps:30 (fun () -> ignore (Db.restart db1))
  in
  (match r.Aries_sched.Sched.outcome with
  | Aries_sched.Sched.Interrupted _ -> () (* genuinely cut mid-recovery *)
  | Aries_sched.Sched.Completed -> () (* recovery won the race; still fine *)
  | Aries_sched.Sched.Stalled _ -> Alcotest.fail "restart stalled");
  let db2, _ = crash_restart db1 in
  let tree' = reopen db2 ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "committed state after interrupted restart" 150
    (List.length (Btree.to_list tree'))

let test_partial_rollback_across_crash () =
  (* a savepoint rollback writes CLRs whose UndoNxtLSN jumps; a crash after
     it must not undo the compensated interval twice *)
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         for i = 0 to 9 do
           Btree.insert tree t ~value:(v i) ~rid:(rid i)
         done;
         let sp = Txnmgr.savepoint t in
         for i = 10 to 19 do
           Btree.insert tree t ~value:(v i) ~rid:(rid i)
         done;
         Txnmgr.rollback_to db.Db.mgr t sp;
         for i = 20 to 24 do
           Btree.insert tree t ~value:(v i) ~rid:(rid i)
         done;
         Logmgr.flush db.Db.wal
         (* crash with the txn in flight: restart must undo 20-24 and 0-9,
            and skip the already-compensated 10-19 *)));
  let db', report = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "everything undone exactly once" 0 (List.length (Btree.to_list tree'));
  Alcotest.(check int) "one loser" 1 (List.length report.Restart.rp_losers)

let test_prepared_commit_after_restart () =
  (* full 2PC cycle: prepare, crash, restart (locks reacquired), then the
     coordinator's decision commits the in-doubt transaction *)
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         Txnmgr.lock db.Db.mgr t (Aries_lock.Lockmgr.Rid (rid 1)) Aries_lock.Lockmgr.X
           Aries_lock.Lockmgr.Commit;
         Btree.insert tree t ~value:(v 1) ~rid:(rid 1);
         Txnmgr.prepare db.Db.mgr t));
  let db', report = crash_restart db in
  let id = List.hd report.Restart.rp_indoubt in
  let txn =
    match Txnmgr.find db'.Db.mgr id with Some t -> t | None -> Alcotest.fail "in-doubt txn lost"
  in
  Db.run_exn db' (fun () -> Txnmgr.commit_prepared db'.Db.mgr txn);
  Alcotest.(check int) "locks released after decision" 0
    (Aries_lock.Lockmgr.held_count db'.Db.locks ~txn:id);
  let tree' = reopen db' ix in
  Alcotest.(check int) "the prepared insert is durable" 1 (List.length (Btree.to_list tree'));
  (* and it survives yet another crash, now as a winner *)
  let db'', _ = crash_restart db' in
  let tree'' = reopen db'' ix in
  Alcotest.(check int) "still there" 1 (List.length (Btree.to_list tree''))

let test_prepared_abort_after_restart () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         Btree.insert tree t ~value:(v 1) ~rid:(rid 1);
         Txnmgr.prepare db.Db.mgr t));
  let db', report = crash_restart db in
  let id = List.hd report.Restart.rp_indoubt in
  let txn = Option.get (Txnmgr.find db'.Db.mgr id) in
  Db.run_exn db' (fun () -> Txnmgr.rollback db'.Db.mgr txn);
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "the aborted prepare left nothing" 0 (List.length (Btree.to_list tree'))

(* ---------- randomized crash-point property ---------- *)

let crash_prop seed =
  let rng = Rng.create seed in
  let db, tree = fresh ~page_size:320 () in
  let ix = Btree.index_id tree in
  Bufpool.set_steal_hook db.Db.pool ~seed ~probability:0.1;
  let committed : (string, Ids.rid) Hashtbl.t = Hashtbl.create 64 in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 59 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i);
            Hashtbl.replace committed (v i) (rid i)
          done));
  (* concurrent transactions; the scheduler stops after a random number of
     steps = the crash point. Committed txns update the oracle at commit;
     everything else must vanish. *)
  let steps = 50 + Rng.int rng 2500 in
  let mk_txn_fiber _fid () =
    let rec loop n =
      if n > 0 then begin
        let txn = Txnmgr.begin_txn db.Db.mgr in
        let local = ref [] in
        let ok =
          try
            for _ = 1 to 1 + Rng.int rng 6 do
              let i = 1000 + Rng.int rng 300 in
              let value = v i in
              let mine = List.exists (fun (x, _) -> String.equal x value) !local in
              if (not mine) && not (Hashtbl.mem committed value) then begin
                Btree.insert tree txn ~value ~rid:(rid i);
                local := (value, `Ins) :: !local
              end
              else if (not mine) && Hashtbl.mem committed value then begin
                Btree.delete tree txn ~value ~rid:(Hashtbl.find committed value);
                local := (value, `Del) :: !local
              end
            done;
            true
          with Txnmgr.Aborted _ -> false
        in
        if ok then begin
          Txnmgr.commit db.Db.mgr txn;
          List.iter
            (fun (value, op) ->
              match op with
              | `Ins -> Hashtbl.replace committed value (rid 0)
              | `Del -> Hashtbl.remove committed value)
            (List.rev !local)
        end;
        Aries_sched.Sched.yield ();
        loop (n - 1)
      end
    in
    loop 40
  in
  (* oracle rids must match inserted rids: compute rid from the value *)
  ignore
    (Db.run db ~policy:(Aries_sched.Sched.Random seed) ~max_steps:steps ~yield_probability:0.3
       (fun () ->
         for fid = 1 to 3 do
           ignore (Aries_sched.Sched.spawn (mk_txn_fiber fid))
         done));
  let db', _report = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  let actual = List.map fst (Btree.to_list tree') in
  let expected = Hashtbl.fold (fun k _ acc -> k :: acc) committed [] |> List.sort compare in
  if actual <> expected then begin
    Printf.printf "MISMATCH seed=%d: actual %d keys, expected %d\n%!" seed (List.length actual)
      (List.length expected);
    false
  end
  else true

let qcheck_crash =
  QCheck.Test.make ~name:"crash at a random point: exactly the committed state is recovered"
    ~count:25 QCheck.small_int crash_prop

(* ---------- fuzzy checkpoints under load ---------- *)

let test_ckpt_crash_before_master () =
  (* Crash-ordering: Checkpoint.take forces the Begin/End pair stable and
     only then updates the master record, with a crash-point hook in the
     window. A crash there must leave the old master valid: restart anchors
     on the previous complete checkpoint and loses nothing. *)
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 59 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Db.checkpoint db;
  let master1 = Logmgr.master db.Db.wal in
  Alcotest.(check bool) "first checkpoint mastered" false (Aries_wal.Lsn.is_nil master1);
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 60 to 99 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Crashpoint.reset ();
  Crashpoint.arm_label "ckpt.master";
  (match Db.checkpoint db with
  | () -> Alcotest.fail "crash point between force and master update never fired"
  | exception Crashpoint.Crash _ -> ());
  Crashpoint.disarm ();
  Crashpoint.reset ();
  Alcotest.(check int) "master still names the old checkpoint" master1
    (Logmgr.master db.Db.wal);
  let db', _report = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "nothing lost across the torn checkpoint" 100
    (List.length (Btree.to_list tree'));
  (* and the next checkpoint completes and advances the master *)
  Db.checkpoint db';
  Alcotest.(check bool) "master advanced past the old checkpoint" true
    (Aries_wal.Lsn.( < ) master1 (Logmgr.master db'.Db.wal))

let test_ckpt_mid_smo () =
  (* Fuzzy checkpoints never quiesce: take one in the middle of every SMO
     (tree pages latched, the split half-propagated) and the outcome must
     be byte-for-byte what it would have been without the checkpoints. *)
  let db, tree = fresh ~page_size:384 () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 39 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let ckpts = ref 0 in
  Btree.set_smo_pause db.Db.benv
    (Some
       (fun () ->
         incr ckpts;
         Db.checkpoint db));
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 40 to 139 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Btree.set_smo_pause db.Db.benv None;
  Alcotest.(check bool) "checkpoints actually fired mid-SMO" true (!ckpts > 0);
  let db', _report = crash_restart db in
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "mid-SMO checkpoints change nothing" 140
    (List.length (Btree.to_list tree'))

let test_ckpt_with_loser_in_flight () =
  (* A checkpoint that records an active transaction (including mid-SMO)
     must not stop restart from rolling it back when it never commits. *)
  let db, tree = fresh ~page_size:384 () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 39 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let ckpts = ref 0 in
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         Btree.set_smo_pause db.Db.benv
           (Some
              (fun () ->
                incr ckpts;
                Db.checkpoint db));
         for i = 40 to 160 do
           Btree.insert tree t ~value:(v i) ~rid:(rid i)
         done;
         Btree.set_smo_pause db.Db.benv None;
         Logmgr.flush db.Db.wal
         (* crash with the txn in flight: the checkpoints recorded it as
            Active, possibly in the middle of one of its SMOs *)));
  Alcotest.(check bool) "checkpoints fired with the loser in flight" true (!ckpts > 0);
  let db', report = crash_restart db in
  Alcotest.(check int) "one loser" 1 (List.length report.Restart.rp_losers);
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "loser fully undone despite checkpoints" 40
    (List.length (Btree.to_list tree'))

let test_analysis_bounded_by_ckpt () =
  (* rp_records_analyzed after a crash is bounded by the number of records
     written since the last complete checkpoint — the whole point of
     checkpointing is that analysis does not reread history. *)
  let db, tree = fresh () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 79 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Db.checkpoint db;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 80 to 99 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let master = Logmgr.master db.Db.wal in
  let since_ckpt = ref 0 in
  Logmgr.iter_from db.Db.wal master (fun _ -> incr since_ckpt);
  let total = ref 0 in
  Logmgr.iter_from db.Db.wal (Logmgr.start_lsn db.Db.wal) (fun _ -> incr total);
  let _db', report = crash_restart db in
  Alcotest.(check bool) "analysis <= records since last complete checkpoint" true
    (report.Restart.rp_records_analyzed <= !since_ckpt);
  Alcotest.(check bool) "analysis strictly under full-log scan" true
    (report.Restart.rp_records_analyzed < !total)

let test_committing_in_ckpt_is_winner () =
  (* Regression: a group-commit committer parked between appending its
     Commit record and the batched force is recorded by a fuzzy checkpoint
     in state Committing. Restart analysis anchored on that checkpoint
     never sees the Commit record (it precedes Begin_ckpt), so the body
     state alone must classify the transaction as committed — it is sound
     because End_ckpt > Commit means the Commit record is stable whenever
     this checkpoint is the restart anchor. *)
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 19 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  ignore
    (Db.run db (fun () ->
         (* emulate the parked committer: Commit record appended, state
            Committing, no force and no End_txn yet *)
         let t = Txnmgr.begin_txn db.Db.mgr in
         for i = 20 to 39 do
           Btree.insert tree t ~value:(v i) ~rid:(rid i)
         done;
         let r =
           Aries_wal.Logrec.make ~txn:t.Txnmgr.txn_id ~prev_lsn:t.Txnmgr.lasts.(0)
             Aries_wal.Logrec.Commit
         in
         t.Txnmgr.lasts.(0) <- Aries_wal.Logset.append db.Db.logs ~stream:0 r;
         t.Txnmgr.state <- Txnmgr.Committing;
         (* the fuzzy checkpoint fires while the committer is parked; its
            force-before-master makes the Commit record stable too *)
         Db.checkpoint db));
  let db', report = crash_restart db in
  Alcotest.(check int) "parked committer is not a loser" 0
    (List.length report.Restart.rp_losers);
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "its work is durable" 40 (List.length (Btree.to_list tree'))

(* ---------- media recovery ---------- *)

let test_media_recovery () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 149 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let dump = Media.take_dump db.Db.mgr db.Db.pool in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 150 to 249 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Bufpool.flush_all db.Db.pool;
  let victim = Btree.root_pid tree in
  let before = Disk.read db.Db.disk victim in
  (* silent corruption flavor: the image is still there, just rotten *)
  Disk.corrupt_flip ~seed:7 db.Db.disk victim;
  Bufpool.drop db.Db.pool victim;
  let applied = Db.run_exn db (fun () -> Media.recover_page db.Db.mgr db.Db.pool dump victim) in
  Alcotest.(check bool) "recover_page ran" true (applied >= 0);
  let after = Disk.read db.Db.disk victim in
  (match (before, after) with
  | Some b, Some a -> Alcotest.(check bool) "page bytes identical" true (Page.equal b a)
  | _ -> Alcotest.fail "page missing after media recovery");
  let tree' = reopen db ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "contents intact" 250 (List.length (Btree.to_list tree'))

let test_media_recovery_whole_tree () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 99 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let dump = Media.take_dump db.Db.mgr db.Db.pool in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 100 to 199 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Bufpool.flush_all db.Db.pool;
  let pids = Disk.pids db.Db.disk in
  List.iter
    (fun pid ->
      Disk.corrupt_drop db.Db.disk pid;
      Bufpool.drop db.Db.pool pid)
    pids;
  Db.run_exn db (fun () ->
      List.iter (fun pid -> ignore (Media.recover_page db.Db.mgr db.Db.pool dump pid)) pids);
  let tree' = reopen db ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "all keys back" 200 (List.length (Btree.to_list tree'))

let () =
  Alcotest.run "recovery"
    [
      ( "restart",
        [
          Alcotest.test_case "committed survive crash" `Quick test_committed_survive;
          Alcotest.test_case "uncommitted rolled back" `Quick test_uncommitted_rolled_back;
          Alcotest.test_case "steal forces undo" `Quick test_steal_forces_undo;
          Alcotest.test_case "no-force forces redo" `Quick test_no_force_redo;
          Alcotest.test_case "restart is idempotent" `Quick test_restart_idempotent;
          Alcotest.test_case "checkpoint bounds redo" `Quick test_checkpoint_bounds_redo;
          Alcotest.test_case "crash mid-SMO" `Quick test_smo_crash_mid_propagation;
          Alcotest.test_case "in-doubt keeps locks" `Quick test_indoubt_keeps_locks;
          Alcotest.test_case "crash during restart" `Quick test_crash_during_restart;
          Alcotest.test_case "partial rollback across crash" `Quick
            test_partial_rollback_across_crash;
          Alcotest.test_case "2PC: commit after restart" `Quick test_prepared_commit_after_restart;
          Alcotest.test_case "2PC: abort after restart" `Quick test_prepared_abort_after_restart;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_crash ]);
      ( "checkpoint",
        [
          Alcotest.test_case "crash between End_ckpt force and master" `Quick
            test_ckpt_crash_before_master;
          Alcotest.test_case "checkpoint mid-SMO changes nothing" `Quick test_ckpt_mid_smo;
          Alcotest.test_case "checkpoint with loser in flight" `Quick
            test_ckpt_with_loser_in_flight;
          Alcotest.test_case "analysis bounded by last checkpoint" `Quick
            test_analysis_bounded_by_ckpt;
          Alcotest.test_case "Committing in checkpoint body is a winner" `Quick
            test_committing_in_ckpt_is_winner;
        ] );
      ( "media",
        [
          Alcotest.test_case "single page" `Quick test_media_recovery;
          Alcotest.test_case "whole tree" `Quick test_media_recovery_whole_tree;
        ] );
    ]
