(* The paper's figures as executable scenarios (experiments E1-E11; see
   DESIGN.md §3). Each test reproduces one figure's schedule and asserts
   the protocol behaviour the paper describes. The benchmark harness
   (bench/main.exe) runs the same scenarios with narrative output. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Key = Aries_page.Key
module Ixlog = Aries_btree.Ixlog
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db

let rid i = { Ids.rid_page = 900 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?(page_size = 384) ?(unique = true) ?config () =
  let db = Db.create ~page_size ?config () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create ?config db.Db.benv txn ~name:"t" ~unique))
  in
  (db, tree)

let seed_keys db tree lo hi =
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = lo to hi do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done))

(* log records strictly after [from] *)
let records_after db from =
  List.filter
    (fun r -> Lsn.( < ) from r.Logrec.lsn)
    (Logmgr.records_between db.Db.wal Lsn.nil Lsn.nil)

let with_trace db f =
  let events = ref [] in
  Btree.set_trace db.Db.benv (Some (fun e -> events := e :: !events));
  let x = f () in
  Btree.set_trace db.Db.benv None;
  (x, List.rev !events)

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: logical undo after an intervening split. *)

let test_e1_logical_undo () =
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  let k8 = "key99999" (* sorts last: a split moves it right *) in
  Db.run_exn db (fun () ->
      let t1 = Txnmgr.begin_txn db.Db.mgr in
      Btree.insert tree t1 ~value:k8 ~rid:(rid 999);
      let p1 = Btree.locate_leaf tree k8 in
      (* T2 fills the same leaf until it splits, and commits *)
      Db.with_txn db (fun t2 ->
          let i = ref 10 in
          while Btree.locate_leaf tree k8 = p1 do
            Btree.insert tree t2 ~value:(v !i) ~rid:(rid !i);
            incr i
          done);
      let p2 = Btree.locate_leaf tree k8 in
      Alcotest.(check bool) "the split moved K8" true (p1 <> p2);
      (* T1 rolls back: Figure 1's logical undo *)
      let mark = Logmgr.last_lsn db.Db.wal in
      Txnmgr.rollback db.Db.mgr t1;
      let clrs =
        List.filter
          (fun r -> r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = Ixlog.rm_id)
          (records_after db mark)
      in
      match clrs with
      | [ clr ] ->
          Alcotest.(check int) "CLR targets the NEW page (P2), not P1" p2 clr.Logrec.page;
          Alcotest.(check bool) "CLR page differs from original" true (clr.Logrec.page <> p1)
      | l -> Alcotest.failf "expected exactly one index CLR, got %d" (List.length l));
  Btree.check_invariants tree;
  Alcotest.(check bool) "K8 gone after rollback" true
    (not (List.exists (fun (value, _) -> String.equal value "key99999") (Btree.to_list tree)))

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2: the locking summary table, measured. *)

let lock_events events =
  List.filter_map
    (function
      | Btree.Ev_lock (name, mode, dur, (`Cond_ok | `Uncond)) -> Some (name, mode, dur)
      | _ -> None)
    events

let test_e2_locking_table () =
  (* data-only locking *)
  let db, tree = fresh () in
  seed_keys db tree 0 19;
  (* FETCH: current key S commit *)
  let (), ev =
    with_trace db (fun () ->
        Db.run_exn db (fun () -> Db.with_txn db (fun txn -> ignore (Btree.fetch tree txn (v 5)))))
  in
  (match lock_events ev with
  | [ (name, "S", "commit") ] ->
      Alcotest.(check bool) "fetch locks the found key's record" true
        (String.length name > 4 && String.sub name 0 4 = "rid:")
  | l -> Alcotest.failf "fetch: unexpected locks (%d)" (List.length l));
  (* INSERT: next key X instant, nothing else (data-only) *)
  let (), ev =
    with_trace db (fun () ->
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> Btree.insert tree txn ~value:"key00005a" ~rid:(rid 500))))
  in
  (match lock_events ev with
  | [ (name, "X", "instant") ] ->
      Alcotest.(check string) "insert next-key lock = next record" "rid:900.6" name
  | l -> Alcotest.failf "insert: unexpected locks (%d)" (List.length l));
  (* DELETE: next key X commit, nothing else (data-only) *)
  let (), ev =
    with_trace db (fun () ->
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> Btree.delete tree txn ~value:(v 10) ~rid:(rid 10))))
  in
  (match lock_events ev with
  | [ (name, "X", "commit") ] ->
      Alcotest.(check string) "delete next-key lock = next record" "rid:900.11" name
  | l -> Alcotest.failf "delete: unexpected locks (%d)" (List.length l));
  (* index-specific locking adds the current-key locks of Figure 2 *)
  let cfg = { Btree.default_config with Btree.locking = Protocol.Index_specific } in
  let db2, tree2 = fresh ~config:cfg () in
  seed_keys db2 tree2 0 19;
  let (), ev =
    with_trace db2 (fun () ->
        Db.run_exn db2 (fun () ->
            Db.with_txn db2 (fun txn -> Btree.insert tree2 txn ~value:"key00005a" ~rid:(rid 500))))
  in
  (match lock_events ev with
  | [ (_, "X", "instant"); (_, "X", "commit") ] -> ()
  | l ->
      Alcotest.failf "index-specific insert: expected X instant + X commit, got %d"
        (List.length l));
  let (), ev =
    with_trace db2 (fun () ->
        Db.run_exn db2 (fun () ->
            Db.with_txn db2 (fun txn -> Btree.delete tree2 txn ~value:(v 10) ~rid:(rid 10))))
  in
  match lock_events ev with
  | [ (_, "X", "commit"); (_, "X", "instant") ] -> ()
  | l ->
      Alcotest.failf "index-specific delete: expected X commit + X instant, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* E3 — Figure 3: an insert racing an in-progress SMO must wait for the
   SMO (SM_Bit -> tree latch) instead of updating the wrong page. *)

let test_e3_smo_insert_interaction () =
  let db, tree = fresh () in
  seed_keys db tree 0 19;
  let cv = Sched.Condvar.create "smo-pause" in
  let paused = ref false in
  Btree.set_smo_pause db.Db.benv
    (Some
       (fun () ->
         if not !paused then begin
           paused := true;
           Sched.Condvar.wait cv
         end));
  let t2_inserted = ref false and t2_started = ref false in
  let blocked_while_smo = ref false in
  let r =
    Db.run db (fun () ->
        (* T1: trigger a split and pause mid-SMO *)
        ignore
          (Sched.spawn ~name:"T1-splitter" (fun () ->
               Db.with_txn db (fun txn ->
                   let i = ref 100 in
                   while not !paused do
                     Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
                     incr i
                   done)));
        (* T2: insert into the splitting region while the SMO is paused *)
        ignore
          (Sched.spawn ~name:"T2-insert" (fun () ->
               while not !paused do
                 Sched.yield ()
               done;
               t2_started := true;
               (* key99998 routes to the rightmost leaf: the one splitting *)
               Db.with_txn db (fun txn -> Btree.insert tree txn ~value:"key99998" ~rid:(rid 77));
               t2_inserted := true));
        (* main: let T2 get stuck, then release the SMO *)
        ignore
          (Sched.spawn ~name:"resumer" (fun () ->
               while not !t2_started do
                 Sched.yield ()
               done;
               for _ = 1 to 10 do
                 Sched.yield ()
               done;
               blocked_while_smo := not !t2_inserted;
               Sched.Condvar.signal cv)))
  in
  Btree.set_smo_pause db.Db.benv None;
  Alcotest.(check bool) "no stall" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check bool) "T2 could not complete while the SMO was in flight" true
    !blocked_while_smo;
  Alcotest.(check (list string)) "no fiber exceptions" []
    (List.map (fun (_, n, _) -> n) r.Sched.exns);
  Alcotest.(check bool) "T2 completed after the SMO" true !t2_inserted;
  Btree.check_invariants tree;
  Alcotest.(check bool) "T2's key present exactly once" true
    (List.length (List.filter (fun (value, _) -> value = "key99998") (Btree.to_list tree)) = 1)

(* ------------------------------------------------------------------ *)
(* E4 — Figure 4: traversal holds at most two page latches (coupling). *)

let test_e4_latch_coupling () =
  let db, tree = fresh () in
  seed_keys db tree 0 199;
  Alcotest.(check bool) "tree is tall enough" true (Btree.height tree >= 1);
  let (), ev =
    with_trace db (fun () ->
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> ignore (Btree.fetch tree txn (v 150)))))
  in
  let held = ref 0 and max_held = ref 0 in
  List.iter
    (function
      | Btree.Ev_latch (_, _, `Acquire) ->
          incr held;
          if !held > !max_held then max_held := !held
      | Btree.Ev_latch (_, _, `Release) -> decr held
      | _ -> ())
    ev;
  Alcotest.(check bool) "at most two page latches simultaneously" true (!max_held <= 2);
  Alcotest.(check int) "all latches released" 0 !held;
  let acquires =
    List.filter_map (function Btree.Ev_latch (p, _, `Acquire) -> Some p | _ -> None) ev
  in
  Alcotest.(check bool) "descends through anchor, root, leaf" true (List.length acquires >= 3)

(* ------------------------------------------------------------------ *)
(* E5 — Figure 5: fetch's conditional lock denied by a conflicting
   holder; fetch releases latches, waits unconditionally, revalidates. *)

let test_e5_fetch_lock_dance () =
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  let fetched = ref None in
  let events = ref [] in
  Btree.set_trace db.Db.benv (Some (fun e -> events := e :: !events));
  let r =
    Db.run db (fun () ->
        ignore
          (Sched.spawn ~name:"T1-deleter" (fun () ->
               let t1 = Txnmgr.begin_txn db.Db.mgr in
               (* uncommitted delete of key 5 leaves an X lock on the next
                  key (key 6) for others to trip on (§2.6) *)
               Btree.delete tree t1 ~value:(v 5) ~rid:(rid 5);
               for _ = 1 to 12 do
                 Sched.yield ()
               done;
               Txnmgr.rollback db.Db.mgr t1));
        ignore
          (Sched.spawn ~name:"T2-fetch" (fun () ->
               Sched.yield ();
               Db.with_txn db (fun t2 -> fetched := Btree.fetch tree t2 (v 5)))))
  in
  Btree.set_trace db.Db.benv None;
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  let dance =
    List.exists
      (function Btree.Ev_lock (_, "S", "commit", `Cond_fail) -> true | _ -> false)
      !events
    && List.exists
         (function Btree.Ev_lock (_, "S", "commit", `Uncond) -> true | _ -> false)
         !events
  in
  Alcotest.(check bool) "conditional fail then unconditional wait" true dance;
  (* T1 rolled back, so key 5 exists again: RR requires T2 to see it *)
  Alcotest.(check bool) "fetch found the key after T1's rollback" true
    (match !fetched with Some k -> String.equal k.Key.value (v 5) | None -> false)

(* ------------------------------------------------------------------ *)
(* E6 — Figure 6: an insert whose next key lives on the next leaf
   latches both leaves while requesting the instant X lock. *)

let test_e6_insert_next_page () =
  let db, tree = fresh () in
  seed_keys db tree 0 199;
  let leaves = Btree.leaf_pids tree in
  Alcotest.(check bool) "several leaves" true (List.length leaves >= 2);
  let first_leaf = List.hd leaves in
  let second_leaf = List.nth leaves 1 in
  let keys = Btree.to_list tree in
  let last_of_first =
    List.filter (fun (value, _) -> Btree.locate_leaf tree value = first_leaf) keys
    |> List.rev |> List.hd |> fst
  in
  let next_key =
    List.find (fun (value, _) -> Btree.locate_leaf tree value = second_leaf) keys
  in
  let target = last_of_first ^ "zz" (* sorts after every key in leaf 1 *) in
  let (), ev =
    with_trace db (fun () ->
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> Btree.insert tree txn ~value:target ~rid:(rid 88))))
  in
  let latched =
    List.filter_map (function Btree.Ev_latch (p, _, `Acquire) -> Some p | _ -> None) ev
  in
  Alcotest.(check bool) "next leaf latched during next-key search" true
    (List.mem second_leaf latched);
  let expect_name = Aries_lock.Lockmgr.name_to_string (Aries_lock.Lockmgr.Rid (snd next_key)) in
  Alcotest.(check bool) "instant X on next leaf's first key" true
    (List.exists
       (function
         | Btree.Ev_lock (name, "X", "instant", _) -> String.equal name expect_name
         | _ -> false)
       ev)

(* ------------------------------------------------------------------ *)
(* E7 — Figure 7: Delete_Bit marking and the boundary-key POSC rule. *)

let body_of_record (r : Logrec.t) = Ixlog.decode ~op:r.Logrec.op r.Logrec.body

let delete_bodies db mark =
  List.filter_map
    (fun r ->
      if r.Logrec.kind = Logrec.Update && r.Logrec.rm_id = Ixlog.rm_id then
        match body_of_record r with
        | Ixlog.Delete_key { mark_delete_bit; _ } -> Some mark_delete_bit
        | _ -> None
      else None)
    (records_after db mark)

let test_e7_delete_bits_and_boundary () =
  let db, tree = fresh () in
  seed_keys db tree 0 199;
  let leaves = Btree.leaf_pids tree in
  let second_leaf = List.nth leaves 1 in
  let on_leaf =
    List.filter (fun (value, _) -> Btree.locate_leaf tree value = second_leaf) (Btree.to_list tree)
  in
  Alcotest.(check bool) "leaf has >= 4 keys" true (List.length on_leaf >= 4);
  let mid_value, mid_rid = List.nth on_leaf (List.length on_leaf / 2) in
  let bound_value, bound_rid = List.hd on_leaf in
  (* non-boundary delete: Delete_Bit set, no tree latch *)
  let mark = Logmgr.last_lsn db.Db.wal in
  let (), ev =
    with_trace db (fun () ->
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> Btree.delete tree txn ~value:mid_value ~rid:mid_rid)))
  in
  (match delete_bodies db mark with
  | [ marked ] -> Alcotest.(check bool) "non-boundary delete marks the Delete_Bit" true marked
  | _ -> Alcotest.fail "expected one delete record");
  Alcotest.(check bool) "no tree latch for a non-boundary delete" true
    (not
       (List.exists
          (function Btree.Ev_tree_latch (`S, (`Acquire | `Instant)) -> true | _ -> false)
          ev));
  (* boundary (smallest on page): POSC = S tree latch held, bit NOT set *)
  let mark = Logmgr.last_lsn db.Db.wal in
  let (), ev =
    with_trace db (fun () ->
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> Btree.delete tree txn ~value:bound_value ~rid:bound_rid)))
  in
  (match delete_bodies db mark with
  | [ marked ] ->
      Alcotest.(check bool) "boundary delete under POSC leaves the bit clear" false marked
  | _ -> Alcotest.fail "expected one delete record");
  Alcotest.(check bool) "boundary delete takes the S tree latch" true
    (List.exists (function Btree.Ev_tree_latch (`S, `Acquire) -> true | _ -> false) ev)

(* ------------------------------------------------------------------ *)
(* E8/E9 — Figures 8 and 9: the page-split log sequence. *)

let test_e9_split_log_sequence () =
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let i = ref 10 in
          while List.length (Btree.leaf_pids tree) = 1 do
            Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
            incr i
          done));
  let all = Logmgr.records_between db.Db.wal Lsn.nil Lsn.nil in
  let ix_ops =
    List.filter_map
      (fun r ->
        if r.Logrec.rm_id = Ixlog.rm_id && r.Logrec.kind = Logrec.Update then
          Some (r, Ixlog.op_name r.Logrec.op)
        else if r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = 0 then Some (r, "dummy_clr")
        else None)
      all
  in
  let names = List.map snd ix_ops in
  let rec find_split = function
    | "format_leaf" :: "leaf_truncate" :: rest -> Some rest
    | _ :: rest -> find_split rest
    | [] -> None
  in
  (match find_split names with
  | Some rest -> (
      let rec upto_dummy acc = function
        | "dummy_clr" :: tail -> Some (List.rev acc, tail)
        | x :: tail -> upto_dummy (x :: acc) tail
        | [] -> None
      in
      match upto_dummy [] rest with
      | Some (propagation, after) ->
          Alcotest.(check bool) "propagation posts to the parent level" true
            (List.exists (fun n -> n = "format_nonleaf" || n = "nl_insert_child") propagation);
          Alcotest.(check bool) "the causing insert comes after the dummy CLR" true
            (List.exists (fun n -> n = "insert_key") after)
      | None -> Alcotest.fail "no dummy CLR after the split records")
  | None -> Alcotest.fail "no split found in the log");
  let split_first =
    let rec find = function
      | (r, "format_leaf") :: (_, "leaf_truncate") :: _ -> r
      | _ :: rest -> find rest
      | [] -> Alcotest.fail "no split pair"
    in
    find ix_ops
  in
  let dummy =
    List.find (fun (r, n) -> n = "dummy_clr" && Lsn.( < ) split_first.Logrec.lsn r.Logrec.lsn) ix_ops
    |> fst
  in
  Alcotest.(check bool) "dummy CLR jumps over the whole SMO" true
    (Lsn.( < ) dummy.Logrec.undo_nxt_lsn split_first.Logrec.lsn)

(* ------------------------------------------------------------------ *)
(* E10 — Figure 10: page-delete log sequence: key delete FIRST, then the
   SMO as an NTA whose dummy CLR points at the key-delete record. *)

let test_e10_page_delete_log_sequence () =
  let db, tree = fresh () in
  seed_keys db tree 0 199;
  let leaves = Btree.leaf_pids tree in
  let victim_leaf = List.nth leaves 1 in
  let on_leaf =
    List.filter (fun (value, _) -> Btree.locate_leaf tree value = victim_leaf) (Btree.to_list tree)
  in
  let mark = Logmgr.last_lsn db.Db.wal in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          List.iter (fun (value, r) -> Btree.delete tree txn ~value ~rid:r) on_leaf));
  Btree.check_invariants tree;
  let recs = records_after db mark in
  let key_delete =
    List.filter
      (fun r ->
        r.Logrec.kind = Logrec.Update && r.Logrec.rm_id = Ixlog.rm_id
        && r.Logrec.page = victim_leaf
        && match body_of_record r with Ixlog.Delete_key _ -> true | _ -> false)
      recs
    |> List.rev |> List.hd
    (* the delete that emptied the page *)
  in
  let after_delete = List.filter (fun r -> Lsn.( < ) key_delete.Logrec.lsn r.Logrec.lsn) recs in
  Alcotest.(check bool) "SMO (unlink) follows the key delete" true
    (List.exists
       (fun r ->
         r.Logrec.rm_id = Ixlog.rm_id && r.Logrec.kind = Logrec.Update
         && match body_of_record r with Ixlog.Leaf_unlink _ -> true | _ -> false)
       after_delete);
  (match
     List.find_opt (fun r -> r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = 0) after_delete
   with
  | Some d ->
      Alcotest.(check int) "dummy CLR points exactly at the key-delete record"
        key_delete.Logrec.lsn d.Logrec.undo_nxt_lsn
  | None -> Alcotest.fail "no dummy CLR after page delete");
  Alcotest.(check bool) "victim leaf left the chain" true
    (not (List.mem victim_leaf (Btree.leaf_pids tree)))

(* ------------------------------------------------------------------ *)
(* E11 — Figure 11: the Delete_Bit forces a space-consuming insert to
   establish a POSC. With the bit, the consumer blocks while an SMO is
   incomplete; the earlier delete's restart undo stays page-oriented.
   With the ablation, the consumer slips into the region of structural
   inconsistency and the restart undo is forced to be logical. *)

let e11_scenario ?(locking = Protocol.Data_only) ?(extra = fun _ _ _ _ -> ()) ~delete_bit () =
  let cfg = { Btree.default_config with Btree.delete_bit_enabled = delete_bit; locking } in
  let db, tree = fresh ~config:cfg () in
  seed_keys db tree 0 199;
  let free_of pid =
    Aries_buffer.Bufpool.with_fix db.Db.pool pid (fun p -> Aries_page.Page.free_space p)
  in
  (* fill the leaf holding [base] until one more key of that size does not
     fit: T1's delete then frees exactly the room T2's insert consumes *)
  let base = "key00042" in
  let entry_len = String.length base + 3 in
  let cost = entry_len + 10 in
  let j = ref 0 in
  while free_of (Btree.locate_leaf tree base) >= cost do
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn ->
            Btree.insert tree txn ~value:(Printf.sprintf "%sf%02d" base !j) ~rid:(rid (300 + !j))));
    incr j
  done;
  let target_leaf = Btree.locate_leaf tree base in
  let on_leaf =
    List.filter
      (fun (value, _) ->
        Btree.locate_leaf tree value = target_leaf && String.length value = entry_len)
      (Btree.to_list tree)
  in
  let del_value, del_rid = List.nth on_leaf (List.length on_leaf / 2) in
  (* same length, unused, sorts into the same region *)
  let consumer_value = String.sub del_value 0 (entry_len - 1) ^ "z" in
  (* T3's SMO pauses forever: the run ends with T3 (and, if the bit works,
     T2) suspended — exactly the state a crash catches. *)
  let cv = Sched.Condvar.create "e11" in
  let paused = ref false in
  let t2_done = ref false in
  let observed_block = ref false in
  Btree.set_smo_pause db.Db.benv
    (Some
       (fun () ->
         if not !paused then begin
           paused := true;
           Logmgr.flush db.Db.wal;
           Sched.Condvar.wait cv (* never signalled: crash point *)
         end));
  ignore
    (Db.run db (fun () ->
         (* T3: start an SMO elsewhere in the tree and pause inside it *)
         ignore
           (Sched.spawn ~name:"T3-smo" (fun () ->
                Db.with_txn db (fun txn ->
                    let i = ref 5000 in
                    while not !paused do
                      Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
                      incr i
                    done)));
         (* T1: delete during the ROSI; stays uncommitted at the crash *)
         ignore
           (Sched.spawn ~name:"T1-delete" (fun () ->
                while not !paused do
                  Sched.yield ()
                done;
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                Btree.delete tree t1 ~value:del_value ~rid:del_rid;
                Logmgr.flush db.Db.wal;
                (* T2 fills the freed space; T1 never commits *)
                ignore
                  (Sched.spawn ~name:"T2-consume" (fun () ->
                       let t2 = Txnmgr.begin_txn db.Db.mgr in
                       Btree.insert tree t2 ~value:consumer_value ~rid:(rid 77);
                       Txnmgr.commit db.Db.mgr t2;
                       t2_done := true));
                ignore
                  (Sched.spawn ~name:"observer" (fun () ->
                       for _ = 1 to 20 do
                         Sched.yield ()
                       done;
                       observed_block := not !t2_done))));
         extra db tree (del_value, del_rid) consumer_value));
  Btree.set_smo_pause db.Db.benv None;
  (db, tree, !observed_block, !t2_done)

let test_e11_delete_bit_protects () =
  let db, tree, blocked, t2_done = e11_scenario ~delete_bit:true () in
  Alcotest.(check bool) "consumer blocked while the SMO was incomplete" true blocked;
  Alcotest.(check bool) "consumer never committed inside the ROSI" false t2_done;
  let db' = Db.crash db in
  let s = Stats.create () in
  let _report = Stats.with_sink s (fun () -> Db.run_exn db' (fun () -> Db.restart db')) in
  Alcotest.(check int) "T1's restart undo stayed page-oriented" 0 (Stats.get s Stats.logical_undos);
  let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
  Btree.check_invariants tree'

let test_e11_ablation_consumes_in_rosi () =
  let db, tree, blocked, t2_done = e11_scenario ~delete_bit:false () in
  Alcotest.(check bool) "ablation: consumer did NOT block" false blocked;
  Alcotest.(check bool) "ablation: consumer committed inside the ROSI" true t2_done;
  let db' = Db.crash db in
  let s = Stats.create () in
  let _report = Stats.with_sink s (fun () -> Db.run_exn db' (fun () -> Db.restart db')) in
  Alcotest.(check bool) "restart undo was forced logical (the Fig-11 hazard)" true
    (Stats.get s Stats.logical_undos > 0);
  (* our SMO compensation bodies are position-independent, so recovery still
     terminates consistently where a byte-image implementation would corrupt
     (see EXPERIMENTS.md); the key must be restored *)
  let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
  Btree.check_invariants tree'

(* ------------------------------------------------------------------ *)
(* The paper's adversarial schedules replayed under protocol #5 (Mvcc):
   the writers keep the full Figure-3 / Figure-11 discipline among
   themselves, but a concurrent snapshot reader sails through both
   windows — no key locks, no lock waits, no parking on the SMO (rule
   R9) — asserted from the trace ring. *)

module Trace = Aries_trace.Trace

let mvcc_cfg = { Btree.default_config with Btree.locking = Protocol.Mvcc }

(* Lock_request / Lock_wait events attributed to any txn in [readers] *)
let reader_lock_events readers =
  List.filter
    (fun (e : Trace.event) ->
      match e.Trace.ev_payload with
      | Trace.Lock_request { txn; _ } | Trace.Lock_wait { txn; _ } -> Hashtbl.mem readers txn
      | _ -> false)
    (Trace.events ())

let with_recording f =
  let saved = Trace.mode () in
  Trace.reset ();
  Trace.set_mode Trace.Record;
  Fun.protect f ~finally:(fun () ->
      Trace.set_mode saved;
      Trace.reset ())

let test_e3_mvcc_wait_free_reader () =
  with_recording (fun () ->
      let db, tree = fresh ~config:mvcc_cfg () in
      seed_keys db tree 0 19;
      let cv = Sched.Condvar.create "smo-pause" in
      let paused = ref false in
      Btree.set_smo_pause db.Db.benv
        (Some
           (fun () ->
             if not !paused then begin
               paused := true;
               Sched.Condvar.wait cv
             end));
      let readers = Hashtbl.create 4 in
      let reader_saw = ref [] in
      let reader_done = ref false in
      let t2_started = ref false and t2_inserted = ref false in
      let blocked_while_smo = ref false in
      let r =
        Db.run db (fun () ->
            (* T1: trigger a split and pause mid-SMO (the Figure-3 window) *)
            ignore
              (Sched.spawn ~name:"T1-splitter" (fun () ->
                   Db.with_txn db (fun txn ->
                       let i = ref 100 in
                       while not !paused do
                         Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
                         incr i
                       done)));
            (* T2: a locking writer aimed at the splitting region — must
               block on the SMO, exactly as in the plain E3 schedule *)
            ignore
              (Sched.spawn ~name:"T2-insert" (fun () ->
                   while not !paused do
                     Sched.yield ()
                   done;
                   t2_started := true;
                   Db.with_txn db (fun txn ->
                       Btree.insert tree txn ~value:"key99998" ~rid:(rid 77));
                   t2_inserted := true));
            (* R: a snapshot reader fetches and scans straight through the
               half-done split, while T2 is stuck *)
            ignore
              (Sched.spawn ~name:"R-snapshot" (fun () ->
                   while not !paused do
                     Sched.yield ()
                   done;
                   let txn = Txnmgr.begin_txn db.Db.mgr in
                   Hashtbl.replace readers txn.Txnmgr.txn_id ();
                   (match Btree.fetch tree txn (v 5) with
                   | Some _ -> ()
                   | None -> Alcotest.fail "snapshot fetch lost a committed key mid-SMO");
                   let c = Btree.open_scan tree txn "" in
                   let rec go acc =
                     match Btree.fetch_next tree txn c () with
                     | Some k -> go (k.Key.value :: acc)
                     | None -> List.rev acc
                   in
                   reader_saw := go [];
                   Txnmgr.commit db.Db.mgr txn;
                   reader_done := true));
            (* main: once the reader is done and T2 is stuck, check T2 is
               still stuck, then release the SMO *)
            ignore
              (Sched.spawn ~name:"resumer" (fun () ->
                   while not (!t2_started && !reader_done) do
                     Sched.yield ()
                   done;
                   for _ = 1 to 10 do
                     Sched.yield ()
                   done;
                   blocked_while_smo := not !t2_inserted;
                   Sched.Condvar.signal cv)))
      in
      Btree.set_smo_pause db.Db.benv None;
      Alcotest.(check bool) "no stall" true (r.Sched.outcome = Sched.Completed);
      Alcotest.(check (list string)) "no fiber exceptions" []
        (List.map (fun (_, n, _) -> n) r.Sched.exns);
      Alcotest.(check bool) "locking writer was blocked by the SMO" true !blocked_while_smo;
      Alcotest.(check bool) "snapshot reader finished while the SMO was in flight" true
        !reader_done;
      Alcotest.(check bool) "locking writer completed after the SMO" true !t2_inserted;
      Alcotest.(check (list string)) "the scan saw exactly the committed keys"
        (List.init 20 v) !reader_saw;
      Alcotest.(check bool) "the run was traced" true (Trace.event_count () > 0);
      Alcotest.(check int) "zero reader key-lock requests and waits (R9)" 0
        (List.length (reader_lock_events readers));
      Btree.check_invariants tree)

let test_e11_mvcc_snapshot_reader () =
  with_recording (fun () ->
      let readers = Hashtbl.create 4 in
      let saw_deleted = ref false and saw_consumer = ref true in
      let reader_done = ref false in
      let db, tree, blocked, t2_done =
        e11_scenario ~locking:Protocol.Mvcc
          ~extra:(fun db tree (del_value, _del_rid) consumer_value ->
            ignore
              (Sched.spawn ~name:"R-snapshot" (fun () ->
                   (* wait until T1's (uncommitted) delete has physically
                      removed the key *)
                   while
                     List.exists
                       (fun (value, _) -> String.equal value del_value)
                       (Btree.to_list tree)
                   do
                     Sched.yield ()
                   done;
                   let txn = Txnmgr.begin_txn db.Db.mgr in
                   Hashtbl.replace readers txn.Txnmgr.txn_id ();
                   saw_deleted := Btree.fetch tree txn del_value <> None;
                   saw_consumer := Btree.fetch tree txn consumer_value <> None;
                   Txnmgr.commit db.Db.mgr txn;
                   reader_done := true)))
          ~delete_bit:true ()
      in
      ignore db;
      Alcotest.(check bool) "consumer blocked while the SMO was incomplete" true blocked;
      Alcotest.(check bool) "consumer never committed inside the ROSI" false t2_done;
      Alcotest.(check bool) "snapshot reader finished while both writers were stuck" true
        !reader_done;
      Alcotest.(check bool) "the uncommitted delete is invisible: key still readable" true
        !saw_deleted;
      Alcotest.(check bool) "the blocked consumer's key is invisible" false !saw_consumer;
      Alcotest.(check bool) "the run was traced" true (Trace.event_count () > 0);
      Alcotest.(check int) "zero reader key-lock requests and waits (R9)" 0
        (List.length (reader_lock_events readers));
      (* the run deliberately ends mid-SMO (T3 is parked inside the split),
         so the physical tree is NOT consistent here — the plain E11 tests
         cover crashing out of this state and recovering *)
      ignore tree)

let () =
  Alcotest.run "scenarios"
    [
      ( "figures",
        [
          Alcotest.test_case "E1 logical undo (Fig 1)" `Quick test_e1_logical_undo;
          Alcotest.test_case "E2 locking table (Fig 2)" `Quick test_e2_locking_table;
          Alcotest.test_case "E3 SMO vs insert (Fig 3)" `Quick test_e3_smo_insert_interaction;
          Alcotest.test_case "E4 latch coupling (Fig 4)" `Quick test_e4_latch_coupling;
          Alcotest.test_case "E5 fetch lock dance (Fig 5)" `Quick test_e5_fetch_lock_dance;
          Alcotest.test_case "E6 insert next page (Fig 6)" `Quick test_e6_insert_next_page;
          Alcotest.test_case "E7 delete bits / POSC (Fig 7)" `Quick test_e7_delete_bits_and_boundary;
          Alcotest.test_case "E9 split log sequence (Fig 8/9)" `Quick test_e9_split_log_sequence;
          Alcotest.test_case "E10 page-delete log sequence (Fig 10)" `Quick
            test_e10_page_delete_log_sequence;
          Alcotest.test_case "E11 Delete_Bit protects (Fig 11)" `Quick test_e11_delete_bit_protects;
          Alcotest.test_case "E11 ablation (Fig 11 counterfactual)" `Quick
            test_e11_ablation_consumes_in_rosi;
        ] );
      ( "figures-mvcc",
        [
          Alcotest.test_case "E3-MVCC wait-free reader vs SMO (Fig 3)" `Quick
            test_e3_mvcc_wait_free_reader;
          Alcotest.test_case "E11-MVCC snapshot reader vs Delete_Bit (Fig 11)" `Quick
            test_e11_mvcc_snapshot_reader;
        ] );
    ]
