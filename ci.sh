#!/bin/sh
# The repository gate, runnable locally and in CI:
#
#   ./ci.sh            # build + full test suite + bounded sim smoke sweep
#   ./ci.sh fast       # build + tests only (skip the smoke sweep)
#
# The smoke sweep is a bounded slice of the full simulation sweep
# (16 schedule seeds and 4 crash seeds x <=40 crash points, in both
# commit modes, checkpoint daemon enabled) — small enough for every
# push; the full-budget sweep is `dune exec bench/main.exe -- sim`.
# The fault smoke runs the same slice with the storage fault engine
# armed (torn writes, bit-rot, transient EIO): every run must recover
# to the oracle or fail loudly with a typed Storage_error.
# The instant smoke is the recovery-during-recovery sweep: cut each
# run mid-flight, restart with `~instant:true`, and crash again inside
# the drain — every second crash must classic-restart to the oracle.
# The stream smoke is the multi-stream WAL crash-order sweep: four log
# streams with the crash-time per-stream flush shuffle armed, under
# both classic and instant restart — recovery must converge to the
# fence-validated committed-state oracle with zero R1-R8 violations.
# The mvcc smoke is the snapshot-read crash sweep: hot writers, full-tree
# snapshot scans checked against the per-snapshot oracle, and the
# version-GC daemon racing both — every read must obey rule R9 and every
# crash must restart (version store rebuilt from the log) to the oracle.
# The q16 gate holds the hot-path speed pass: slice-by-16 CRC >= 4x the
# bytewise baseline, page-codec CRC overhead <= 25.5%, arena reuse on
# every steady-state log append, and an all-hit image-cache probe storm.
# The shards smoke is the sharded 2PC sweep: presumed-abort two-phase
# commit across a Sharddb cluster with the flush shuffle armed, crashing
# the whole cluster, fail-stopping single shards mid-run (coordinators
# and participants alike), and running whole workloads with a shard down
# — every run must match the cross-shard committed-state oracle (commit
# everywhere or abort everywhere) with zero R1-R10 violations and zero
# leaked in-doubt locks; the --instant variant restarts every shard
# mid-recovery and serves a second workload phase while in-doubts resolve.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== tier-1 tests (dune runtest) =="
dune runtest

if [ "${1:-}" != "fast" ]; then
  echo "== hot-path speed gates (bench q16) =="
  dune exec bench/main.exe -- q16

  echo "== sim smoke sweep =="
  dune exec bench/main.exe -- sim smoke

  echo "== sim fault smoke sweep =="
  dune exec bench/main.exe -- sim smoke --faults

  echo "== sim instant-restart smoke sweep =="
  dune exec bench/main.exe -- sim smoke --instant

  echo "== sim multi-stream smoke sweep (classic restart) =="
  dune exec bench/main.exe -- sim smoke --streams

  echo "== sim multi-stream smoke sweep (instant restart) =="
  dune exec bench/main.exe -- sim smoke --streams --instant

  echo "== sim mvcc snapshot-read smoke sweep =="
  dune exec bench/main.exe -- sim smoke --mvcc

  echo "== sim sharded 2PC smoke sweep =="
  dune exec bench/main.exe -- sim smoke --shards

  echo "== sim sharded 2PC smoke sweep (instant restart) =="
  dune exec bench/main.exe -- sim smoke --shards --instant
fi

echo "ci.sh: all green"
