(* Crash recovery walkthrough: a workload with committed and in-flight
   transactions is cut off by a simulated power failure (with aggressive
   page stealing, so uncommitted data is on disk); ARIES restart brings
   the database back to exactly the committed state.

   Run with: dune exec examples/crash_recovery.exe *)

module Ids = Aries_util.Ids
module Logmgr = Aries_wal.Logmgr
module Bufpool = Aries_buffer.Bufpool
module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Media = Aries_recovery.Media
module Disk = Aries_page.Disk
module Db = Aries_db.Db

let rid i = { Ids.rid_page = 500 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "order-%05d" i

let () =
  print_endline "== crash recovery walkthrough ==";
  let db = Db.create ~page_size:512 () in
  (* aggressive steal: dirty pages (even with uncommitted data) keep
     trickling to disk, exercising restart undo *)
  Bufpool.set_steal_hook db.Db.pool ~seed:7 ~probability:0.2;
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"orders" ~unique:true))
  in
  let ix = Btree.index_id tree in

  (* committed work *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 299 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Printf.printf "committed 300 orders; tree height %d over %d pages\n" (Btree.height tree)
    (Btree.page_count tree);

  (* a fuzzy archive dump for media recovery, taken while running *)
  let dump = Media.take_dump db.Db.mgr db.Db.pool in

  (* in-flight work that the crash will cut off (log flushed so the
     records survive and must be explicitly undone) *)
  ignore
    (Db.run db (fun () ->
         let t1 = Txnmgr.begin_txn db.Db.mgr in
         for i = 300 to 449 do
           Btree.insert tree t1 ~value:(v i) ~rid:(rid i)
         done;
         for i = 0 to 49 do
           Btree.delete tree t1 ~value:(v i) ~rid:(rid i)
         done;
         Logmgr.flush db.Db.wal
         (* no commit: the fiber ends with t1 in flight *)));
  Printf.printf "in-flight txn wrote %d log records, then... power failure.\n"
    (Logmgr.record_count db.Db.wal);

  (* crash: buffer pool and volatile log tail vanish *)
  let db = Db.crash db in
  let report = Db.run_exn db (fun () -> Db.restart db) in
  Format.printf "@.restart report:@.%a@.@." Aries_recovery.Restart.pp_report report;

  let tree = Btree.open_existing db.Db.benv ix in
  Btree.check_invariants tree;
  let keys = Btree.to_list tree in
  Printf.printf "after restart: %d orders (expected 300), first=%s last=%s\n" (List.length keys)
    (fst (List.hd keys))
    (fst (List.nth keys (List.length keys - 1)));

  (* media failure: lose a page, recover it from the dump + log *)
  let victim = Btree.locate_leaf tree (v 150) in
  Printf.printf "simulating media failure of leaf page %d...\n" victim;
  Bufpool.flush_all db.Db.pool;
  Disk.corrupt_drop db.Db.disk victim;
  Bufpool.drop db.Db.pool victim;
  let applied = Db.run_exn db (fun () -> Media.recover_page db.Db.mgr db.Db.pool dump victim) in
  Printf.printf "media recovery replayed %d log records for page %d\n" applied victim;
  Btree.check_invariants tree;
  Printf.printf "order-00150 findable again: %b\n"
    (Db.run_exn db (fun () ->
         Db.with_txn db (fun txn -> Btree.fetch tree txn (v 150) <> None)));
  print_endline "done."
