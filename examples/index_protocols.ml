(* Locking-protocol comparison: run the same single-record operations under
   ARIES/IM data-only locking, ARIES/IM index-specific locking, ARIES/KVL,
   System R-style locking, and MVCC snapshot reads, and print the number of
   lock requests each needs — the paper's central efficiency claim (§1, §5).

   Run with: dune exec examples/index_protocols.exe *)

module Stats = Aries_util.Stats
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Db = Aries_db.Db
module Table = Aries_db.Table

let protocols =
  [
    Protocol.Data_only;
    Protocol.Index_specific;
    Protocol.Kvl;
    Protocol.System_r;
    Protocol.Mvcc;
  ]

let specs =
  [
    { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun row -> row.(0)) };
    { Table.sp_name = "cat"; sp_unique = false; sp_key = (fun row -> row.(1)) };
  ]

(* one table with a unique and a nonunique index; measured ops go through
   the Table layer so the record-manager locks are counted too *)
let measure locking =
  let config = { Btree.default_config with Btree.locking } in
  let db = Db.create ~config () in
  let tbl =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs))
  in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 199 do
            ignore
              (Table.insert tbl txn
                 [| Printf.sprintf "item%04d" i; Printf.sprintf "cat%d" (i mod 7) |])
          done));
  let count op =
    let s = Stats.create () in
    Db.run_exn db (fun () -> Stats.with_sink s (fun () -> Db.with_txn db op));
    Stats.get s Stats.lock_requests
  in
  let fetch_locks =
    count (fun txn -> ignore (Table.fetch tbl txn ~index:"pk" "item0100"))
  in
  let insert_locks = count (fun txn -> ignore (Table.insert tbl txn [| "item9000"; "cat1" |])) in
  let delete_locks =
    count (fun txn ->
        match Table.fetch tbl txn ~index:"pk" "item0050" with
        | Some (rid, _) -> Table.delete tbl txn rid
        | None -> ())
  in
  let scan_locks =
    count (fun txn -> ignore (Table.scan tbl txn ~index:"cat" "cat3" ~stop:("cat3", `Le) ()))
  in
  (fetch_locks, insert_locks, delete_locks, scan_locks)

let () =
  print_endline "== lock requests per operation, by locking protocol ==";
  print_endline "(table ops: 1 record + 2 indexes; scan returns ~29 rows)";
  Printf.printf "%-16s %8s %8s %10s %10s\n" "protocol" "fetch" "insert" "fetch+del" "scan";
  List.iter
    (fun locking ->
      let f, i, d, s = measure locking in
      Printf.printf "%-16s %8d %8d %10d %10d\n" (Protocol.locking_to_string locking) f i d s)
    protocols;
  print_endline "";
  print_endline "data-only locking (ARIES/IM) treats the record lock as the key lock for";
  print_endline "every index, so it needs the fewest lock calls; System R-style locking";
  print_endline "locks current+next key values with commit duration everywhere; mvcc";
  print_endline "(protocol #5) reads committed version chains, so fetch and scan take";
  print_endline "no index locks at all."
