type t = int

let nil = 0

let is_nil t = t = nil

let compare = Int.compare

let ( < ) (a : t) b = Stdlib.( < ) a b

let ( <= ) (a : t) b = Stdlib.( <= ) a b

let ( >= ) (a : t) b = Stdlib.( >= ) a b

let max = Stdlib.max

let min = Stdlib.min

let pp ppf t = if t = nil then Format.pp_print_string ppf "nil" else Format.fprintf ppf "%d" t
