(** Log sequence numbers.

    An LSN is the byte offset of a record in the log address space, so LSNs
    increase monotonically with log writes — the property ARIES exploits
    when comparing a [page_lsn] with a log record's LSN to decide whether
    the page already contains that update. *)

type t = int

val nil : t
(** Smaller than every real LSN; the [page_lsn] of a never-updated page and
    the [prev_lsn] of a transaction's first record. *)

val is_nil : t -> bool

val compare : t -> t -> int

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val max : t -> t -> t

val min : t -> t -> t

val pp : Format.formatter -> t -> unit
