lib/wal/logmgr.ml: Aries_util Buffer Bytebuf Bytes List Logrec Lsn Printf Stats String
