lib/wal/logrec.mli: Aries_util Format Ids Lsn
