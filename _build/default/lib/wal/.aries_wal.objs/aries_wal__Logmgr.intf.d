lib/wal/logmgr.mli: Logrec Lsn
