lib/wal/logrec.ml: Aries_util Bytebuf Bytes Format Ids Lsn Printf
