lib/buffer/bufpool.mli: Aries_page Aries_util Aries_wal Ids
