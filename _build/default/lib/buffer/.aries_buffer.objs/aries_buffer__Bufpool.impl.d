lib/buffer/bufpool.ml: Aries_page Aries_util Aries_wal Fun Hashtbl Ids List Printf Rng Stats
