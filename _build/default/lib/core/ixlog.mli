(** Index-manager log record payloads (rm_id {!rm_id}).

    Every body names exactly one page's change so that redo is always
    page-oriented (§3 "Logging": each log record contains the identity of
    the affected page and the inserted or deleted key). The same opcodes are
    used by forward-processing Update records and by CLRs — a CLR that
    compensates a key insert simply carries a [Delete_key] body for the page
    the key currently lives on.

    Structure-modification opcodes carry enough state to be {e undone}
    page-oriented too (removed keys, old link values, positions), because a
    partially completed SMO interrupted by a crash is rolled back
    page-oriented to restore structural consistency (§3). *)

open Aries_util
module Key = Aries_page.Key

val rm_id : int
(** Resource-manager id of the index manager. *)

type body =
  | Insert_key of {
      ix : Ids.index_id;  (** owning index (anchor pid): logical undo must
                              know which tree to re-traverse *)
      key : Key.t;
      reset_sm : bool;  (** Fig 6: insert observed a stale SM_Bit and resets it *)
      reset_delete : bool;  (** Fig 6: likewise for the Delete_Bit *)
    }
  | Delete_key of {
      ix : Ids.index_id;
      key : Key.t;
      reset_sm : bool;  (** Fig 7: delete observed a stale SM_Bit and resets it *)
      set_sm : bool;
          (** the delete empties the page at the start of a page-delete SMO:
              mark it so no empty page is ever reachable with SM_Bit = 0 *)
      mark_delete_bit : bool;
          (** Fig 7: '1' unless the delete ran under the tree latch (POSC),
              and never for CLR deletes (they are redo-only, nothing will
              consume-then-need-to-undo them) *)
    }
  | Format_leaf of {
      keys : Key.t list;
      prev : Ids.page_id;
      next : Ids.page_id;
      sm_bit : bool;
    }  (** (re)initialize a leaf page wholesale: new page of a split, index
          creation, or — with empty keys — the CLR that un-formats it *)
  | Leaf_truncate of {
      removed : Key.t list;  (** the upper keys moved right by a split *)
      old_next : Ids.page_id;
      new_next : Ids.page_id;
    }  (** split source page: drop [removed], link to the new page, SM_Bit:=1 *)
  | Leaf_restore of {
      add_keys : Key.t list;
      set_prev : Ids.page_id option;
      set_next : Ids.page_id option;
    }  (** CLR body undoing truncate/relink/unlink *)
  | Leaf_relink of {
      old_prev : Ids.page_id;
      new_prev : Ids.page_id;
      old_next : Ids.page_id;
      new_next : Ids.page_id;
    }  (** neighbor pointer surgery (split right-neighbor, page delete) *)
  | Leaf_unlink of { old_prev : Ids.page_id; old_next : Ids.page_id }
      (** page delete victim: cleared links, SM_Bit:=1, now an orphan *)
  | Format_nonleaf of {
      level : int;
      children : Ids.page_id list;
      high_keys : Key.t list;
      sm_bit : bool;
    }
  | Nl_insert_child of {
      child_idx : int;  (** insertion index in the children vector *)
      sep_idx : int;  (** insertion index in the high-keys vector *)
      sep : Key.t;
      child : Ids.page_id;
    }  (** post a split to the parent, SM_Bit:=1 *)
  | Nl_remove_child of {
      child_idx : int;
      child : Ids.page_id;
      sep_idx : int;  (** meaningful iff [sep] is [Some] *)
      sep : Key.t option;  (** [None] when the parent had a single child *)
      level : int;  (** the parent's level, needed to compensate a
                        removal that emptied the page *)
    }  (** remove a deleted page from its parent, SM_Bit:=1 *)
  | Nl_truncate of {
      keep_children : int;  (** children (and [keep_children - 1] high keys) kept *)
      removed_children : Ids.page_id list;
      removed_high_keys : Key.t list;
          (** the dropped suffix, {e including} the separator pushed up to the
              grandparent (it leaves this page) — kept for page-oriented undo *)
    }  (** nonleaf split source: drop the upper entries, SM_Bit:=1 *)
  | Nl_restore of { add_children : Ids.page_id list; add_high_keys : Key.t list }
      (** CLR body undoing a nonleaf truncate: re-append the suffix *)
  | Anchor_set of {
      old_root : Ids.page_id;
      new_root : Ids.page_id;
      old_height : int;
      new_height : int;
    }
  | Format_anchor of { name : string; unique : bool; root : Ids.page_id; height : int }
  | Reset_bits of { sm : bool; delete : bool }
      (** redo-only housekeeping: clear the named bits (Fig 8 optional step) *)

val op_of_body : body -> int

val encode : body -> bytes

val decode : op:int -> bytes -> body

val op_name : int -> string

val pp : Format.formatter -> body -> unit
