open Aries_util
module Key = Aries_page.Key

let rm_id = 1

type body =
  | Insert_key of { ix : Ids.index_id; key : Key.t; reset_sm : bool; reset_delete : bool }
  | Delete_key of {
      ix : Ids.index_id;
      key : Key.t;
      reset_sm : bool;
      set_sm : bool;
      mark_delete_bit : bool;
    }
  | Format_leaf of { keys : Key.t list; prev : Ids.page_id; next : Ids.page_id; sm_bit : bool }
  | Leaf_truncate of { removed : Key.t list; old_next : Ids.page_id; new_next : Ids.page_id }
  | Leaf_restore of {
      add_keys : Key.t list;
      set_prev : Ids.page_id option;
      set_next : Ids.page_id option;
    }
  | Leaf_relink of {
      old_prev : Ids.page_id;
      new_prev : Ids.page_id;
      old_next : Ids.page_id;
      new_next : Ids.page_id;
    }
  | Leaf_unlink of { old_prev : Ids.page_id; old_next : Ids.page_id }
  | Format_nonleaf of {
      level : int;
      children : Ids.page_id list;
      high_keys : Key.t list;
      sm_bit : bool;
    }
  | Nl_insert_child of { child_idx : int; sep_idx : int; sep : Key.t; child : Ids.page_id }
  | Nl_remove_child of {
      child_idx : int;
      child : Ids.page_id;
      sep_idx : int;
      sep : Key.t option;
      level : int;
    }
  | Nl_truncate of {
      keep_children : int;
      removed_children : Ids.page_id list;
      removed_high_keys : Key.t list;
    }
  | Nl_restore of { add_children : Ids.page_id list; add_high_keys : Key.t list }
  | Anchor_set of {
      old_root : Ids.page_id;
      new_root : Ids.page_id;
      old_height : int;
      new_height : int;
    }
  | Format_anchor of { name : string; unique : bool; root : Ids.page_id; height : int }
  | Reset_bits of { sm : bool; delete : bool }

let op_of_body = function
  | Insert_key _ -> 1
  | Delete_key _ -> 2
  | Format_leaf _ -> 3
  | Leaf_truncate _ -> 4
  | Leaf_restore _ -> 5
  | Leaf_relink _ -> 6
  | Leaf_unlink _ -> 7
  | Format_nonleaf _ -> 8
  | Nl_insert_child _ -> 9
  | Nl_remove_child _ -> 10
  | Anchor_set _ -> 11
  | Format_anchor _ -> 12
  | Reset_bits _ -> 13
  | Nl_truncate _ -> 14
  | Nl_restore _ -> 15

let op_name = function
  | 1 -> "insert_key"
  | 2 -> "delete_key"
  | 3 -> "format_leaf"
  | 4 -> "leaf_truncate"
  | 5 -> "leaf_restore"
  | 6 -> "leaf_relink"
  | 7 -> "leaf_unlink"
  | 8 -> "format_nonleaf"
  | 9 -> "nl_insert_child"
  | 10 -> "nl_remove_child"
  | 11 -> "anchor_set"
  | 12 -> "format_anchor"
  | 13 -> "reset_bits"
  | 14 -> "nl_truncate"
  | 15 -> "nl_restore"
  | n -> Printf.sprintf "op-%d" n

let write_keys w keys =
  Bytebuf.W.u32 w (List.length keys);
  List.iter (Key.encode w) keys

let read_keys r =
  let n = Bytebuf.R.u32 r in
  List.init n (fun _ -> Key.decode r)

let write_pid_opt w = function
  | None -> Bytebuf.W.bool w false
  | Some pid ->
      Bytebuf.W.bool w true;
      Bytebuf.W.i64 w pid

let read_pid_opt r = if Bytebuf.R.bool r then Some (Bytebuf.R.i64 r) else None

let encode body =
  let w = Bytebuf.W.create () in
  (match body with
  | Insert_key { ix; key; reset_sm; reset_delete } ->
      Bytebuf.W.i64 w ix;
      Key.encode w key;
      Bytebuf.W.bool w reset_sm;
      Bytebuf.W.bool w reset_delete
  | Delete_key { ix; key; reset_sm; set_sm; mark_delete_bit } ->
      Bytebuf.W.i64 w ix;
      Key.encode w key;
      Bytebuf.W.bool w reset_sm;
      Bytebuf.W.bool w set_sm;
      Bytebuf.W.bool w mark_delete_bit
  | Format_leaf { keys; prev; next; sm_bit } ->
      write_keys w keys;
      Bytebuf.W.i64 w prev;
      Bytebuf.W.i64 w next;
      Bytebuf.W.bool w sm_bit
  | Leaf_truncate { removed; old_next; new_next } ->
      write_keys w removed;
      Bytebuf.W.i64 w old_next;
      Bytebuf.W.i64 w new_next
  | Leaf_restore { add_keys; set_prev; set_next } ->
      write_keys w add_keys;
      write_pid_opt w set_prev;
      write_pid_opt w set_next
  | Leaf_relink { old_prev; new_prev; old_next; new_next } ->
      Bytebuf.W.i64 w old_prev;
      Bytebuf.W.i64 w new_prev;
      Bytebuf.W.i64 w old_next;
      Bytebuf.W.i64 w new_next
  | Leaf_unlink { old_prev; old_next } ->
      Bytebuf.W.i64 w old_prev;
      Bytebuf.W.i64 w old_next
  | Format_nonleaf { level; children; high_keys; sm_bit } ->
      Bytebuf.W.u16 w level;
      Bytebuf.W.u32 w (List.length children);
      List.iter (Bytebuf.W.i64 w) children;
      write_keys w high_keys;
      Bytebuf.W.bool w sm_bit
  | Nl_insert_child { child_idx; sep_idx; sep; child } ->
      Bytebuf.W.u32 w child_idx;
      Bytebuf.W.u32 w sep_idx;
      Key.encode w sep;
      Bytebuf.W.i64 w child
  | Nl_remove_child { child_idx; child; sep_idx; sep; level } ->
      Bytebuf.W.u32 w child_idx;
      Bytebuf.W.i64 w child;
      Bytebuf.W.u32 w sep_idx;
      Bytebuf.W.u16 w level;
      (match sep with
      | None -> Bytebuf.W.bool w false
      | Some k ->
          Bytebuf.W.bool w true;
          Key.encode w k)
  | Anchor_set { old_root; new_root; old_height; new_height } ->
      Bytebuf.W.i64 w old_root;
      Bytebuf.W.i64 w new_root;
      Bytebuf.W.u16 w old_height;
      Bytebuf.W.u16 w new_height
  | Format_anchor { name; unique; root; height } ->
      Bytebuf.W.string w name;
      Bytebuf.W.bool w unique;
      Bytebuf.W.i64 w root;
      Bytebuf.W.u16 w height
  | Reset_bits { sm; delete } ->
      Bytebuf.W.bool w sm;
      Bytebuf.W.bool w delete
  | Nl_truncate { keep_children; removed_children; removed_high_keys } ->
      Bytebuf.W.u32 w keep_children;
      Bytebuf.W.u32 w (List.length removed_children);
      List.iter (Bytebuf.W.i64 w) removed_children;
      write_keys w removed_high_keys
  | Nl_restore { add_children; add_high_keys } ->
      Bytebuf.W.u32 w (List.length add_children);
      List.iter (Bytebuf.W.i64 w) add_children;
      write_keys w add_high_keys);
  Bytebuf.W.contents w

let decode ~op bytes =
  let r = Bytebuf.R.of_bytes bytes in
  let body =
    match op with
    | 1 ->
        let ix = Bytebuf.R.i64 r in
        let key = Key.decode r in
        let reset_sm = Bytebuf.R.bool r in
        let reset_delete = Bytebuf.R.bool r in
        Insert_key { ix; key; reset_sm; reset_delete }
    | 2 ->
        let ix = Bytebuf.R.i64 r in
        let key = Key.decode r in
        let reset_sm = Bytebuf.R.bool r in
        let set_sm = Bytebuf.R.bool r in
        let mark_delete_bit = Bytebuf.R.bool r in
        Delete_key { ix; key; reset_sm; set_sm; mark_delete_bit }
    | 3 ->
        let keys = read_keys r in
        let prev = Bytebuf.R.i64 r in
        let next = Bytebuf.R.i64 r in
        let sm_bit = Bytebuf.R.bool r in
        Format_leaf { keys; prev; next; sm_bit }
    | 4 ->
        let removed = read_keys r in
        let old_next = Bytebuf.R.i64 r in
        let new_next = Bytebuf.R.i64 r in
        Leaf_truncate { removed; old_next; new_next }
    | 5 ->
        let add_keys = read_keys r in
        let set_prev = read_pid_opt r in
        let set_next = read_pid_opt r in
        Leaf_restore { add_keys; set_prev; set_next }
    | 6 ->
        let old_prev = Bytebuf.R.i64 r in
        let new_prev = Bytebuf.R.i64 r in
        let old_next = Bytebuf.R.i64 r in
        let new_next = Bytebuf.R.i64 r in
        Leaf_relink { old_prev; new_prev; old_next; new_next }
    | 7 ->
        let old_prev = Bytebuf.R.i64 r in
        let old_next = Bytebuf.R.i64 r in
        Leaf_unlink { old_prev; old_next }
    | 8 ->
        let level = Bytebuf.R.u16 r in
        let nc = Bytebuf.R.u32 r in
        let children = List.init nc (fun _ -> Bytebuf.R.i64 r) in
        let high_keys = read_keys r in
        let sm_bit = Bytebuf.R.bool r in
        Format_nonleaf { level; children; high_keys; sm_bit }
    | 9 ->
        let child_idx = Bytebuf.R.u32 r in
        let sep_idx = Bytebuf.R.u32 r in
        let sep = Key.decode r in
        let child = Bytebuf.R.i64 r in
        Nl_insert_child { child_idx; sep_idx; sep; child }
    | 10 ->
        let child_idx = Bytebuf.R.u32 r in
        let child = Bytebuf.R.i64 r in
        let sep_idx = Bytebuf.R.u32 r in
        let level = Bytebuf.R.u16 r in
        let sep = if Bytebuf.R.bool r then Some (Key.decode r) else None in
        Nl_remove_child { child_idx; child; sep_idx; sep; level }
    | 11 ->
        let old_root = Bytebuf.R.i64 r in
        let new_root = Bytebuf.R.i64 r in
        let old_height = Bytebuf.R.u16 r in
        let new_height = Bytebuf.R.u16 r in
        Anchor_set { old_root; new_root; old_height; new_height }
    | 12 ->
        let name = Bytebuf.R.string r in
        let unique = Bytebuf.R.bool r in
        let root = Bytebuf.R.i64 r in
        let height = Bytebuf.R.u16 r in
        Format_anchor { name; unique; root; height }
    | 13 ->
        let sm = Bytebuf.R.bool r in
        let delete = Bytebuf.R.bool r in
        Reset_bits { sm; delete }
    | 14 ->
        let keep_children = Bytebuf.R.u32 r in
        let nc = Bytebuf.R.u32 r in
        let removed_children = List.init nc (fun _ -> Bytebuf.R.i64 r) in
        let removed_high_keys = read_keys r in
        Nl_truncate { keep_children; removed_children; removed_high_keys }
    | 15 ->
        let nc = Bytebuf.R.u32 r in
        let add_children = List.init nc (fun _ -> Bytebuf.R.i64 r) in
        let add_high_keys = read_keys r in
        Nl_restore { add_children; add_high_keys }
    | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad index op %d" n))
  in
  Bytebuf.R.expect_end r;
  body

let pp ppf body =
  match body with
  | Insert_key { key; reset_sm; reset_delete; _ } ->
      Format.fprintf ppf "insert_key %a%s%s" Key.pp key
        (if reset_sm then " reset_sm" else "")
        (if reset_delete then " reset_del" else "")
  | Delete_key { key; mark_delete_bit; _ } ->
      Format.fprintf ppf "delete_key %a%s" Key.pp key (if mark_delete_bit then " mark_del" else "")
  | Format_leaf { keys; prev; next; _ } ->
      Format.fprintf ppf "format_leaf %d keys prev=%d next=%d" (List.length keys) prev next
  | Leaf_truncate { removed; new_next; _ } ->
      Format.fprintf ppf "leaf_truncate -%d keys next=%d" (List.length removed) new_next
  | Leaf_restore { add_keys; _ } -> Format.fprintf ppf "leaf_restore +%d keys" (List.length add_keys)
  | Leaf_relink { new_prev; new_next; _ } ->
      Format.fprintf ppf "leaf_relink prev=%d next=%d" new_prev new_next
  | Leaf_unlink _ -> Format.fprintf ppf "leaf_unlink"
  | Format_nonleaf { level; children; _ } ->
      Format.fprintf ppf "format_nonleaf level=%d fanout=%d" level (List.length children)
  | Nl_insert_child { sep; child; _ } -> Format.fprintf ppf "nl_insert_child %a -> %d" Key.pp sep child
  | Nl_remove_child { child; _ } -> Format.fprintf ppf "nl_remove_child %d" child
  | Anchor_set { new_root; new_height; _ } ->
      Format.fprintf ppf "anchor_set root=%d height=%d" new_root new_height
  | Format_anchor { name; _ } -> Format.fprintf ppf "format_anchor %s" name
  | Reset_bits { sm; delete } -> Format.fprintf ppf "reset_bits sm=%b del=%b" sm delete
  | Nl_truncate { keep_children; removed_children; _ } ->
      Format.fprintf ppf "nl_truncate keep=%d -%d children" keep_children
        (List.length removed_children)
  | Nl_restore { add_children; _ } ->
      Format.fprintf ppf "nl_restore +%d children" (List.length add_children)
