module Vec = Aries_util.Vec
module Key = Aries_page.Key
module Page = Aries_page.Page

let fail page fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Apply: page %d: %s" page.Page.pid msg))
    fmt

let find_key keys k = Vec.binary_search ~compare:Key.compare keys k

let insert_key page keys k =
  match find_key keys k with
  | Ok _ -> fail page "insert of existing key %s" (Key.to_string k)
  | Error pos -> Vec.insert keys pos k

let delete_key page keys k =
  match find_key keys k with
  | Ok pos -> ignore (Vec.remove keys pos)
  | Error _ -> fail page "delete of absent key %s" (Key.to_string k)

let set_content_leaf page ~keys ~prev ~next ~sm_bit =
  let v = Vec.create () in
  List.iter (Vec.push v) keys;
  page.Page.content <-
    Page.Leaf
      { Page.lf_sm_bit = sm_bit; lf_delete_bit = false; lf_prev = prev; lf_next = next; lf_keys = v }

let apply page (body : Ixlog.body) =
  match body with
  | Ixlog.Insert_key { key; reset_sm; reset_delete; _ } ->
      let l = Page.as_leaf page in
      insert_key page l.Page.lf_keys key;
      if reset_sm then l.Page.lf_sm_bit <- false;
      if reset_delete then l.Page.lf_delete_bit <- false
  | Ixlog.Delete_key { key; reset_sm; set_sm; mark_delete_bit; _ } ->
      let l = Page.as_leaf page in
      delete_key page l.Page.lf_keys key;
      if reset_sm then l.Page.lf_sm_bit <- false;
      if set_sm then l.Page.lf_sm_bit <- true;
      if mark_delete_bit then l.Page.lf_delete_bit <- true
  | Ixlog.Format_leaf { keys; prev; next; sm_bit } ->
      set_content_leaf page ~keys ~prev ~next ~sm_bit
  | Ixlog.Leaf_truncate { removed; new_next; old_next = _ } ->
      let l = Page.as_leaf page in
      List.iter (delete_key page l.Page.lf_keys) removed;
      l.Page.lf_next <- new_next;
      l.Page.lf_sm_bit <- true
  | Ixlog.Leaf_restore { add_keys; set_prev; set_next } ->
      let l = Page.as_leaf page in
      List.iter (insert_key page l.Page.lf_keys) add_keys;
      (match set_prev with Some p -> l.Page.lf_prev <- p | None -> ());
      (match set_next with Some n -> l.Page.lf_next <- n | None -> ());
      (* restore is only ever the compensation of an SMO step: once the step
         is compensated the page is structurally sound again *)
      l.Page.lf_sm_bit <- false
  | Ixlog.Leaf_relink { new_prev; new_next; _ } ->
      let l = Page.as_leaf page in
      l.Page.lf_prev <- new_prev;
      l.Page.lf_next <- new_next;
      l.Page.lf_sm_bit <- true
  | Ixlog.Leaf_unlink _ ->
      let l = Page.as_leaf page in
      if Vec.length l.Page.lf_keys <> 0 then fail page "unlink of nonempty leaf";
      l.Page.lf_prev <- Aries_util.Ids.nil_page;
      l.Page.lf_next <- Aries_util.Ids.nil_page;
      l.Page.lf_sm_bit <- true
  | Ixlog.Format_nonleaf { level; children; high_keys; sm_bit } ->
      let cv = Vec.create () and kv = Vec.create () in
      List.iter (Vec.push cv) children;
      List.iter (Vec.push kv) high_keys;
      page.Page.content <-
        Page.Nonleaf { Page.nl_sm_bit = sm_bit; nl_level = level; nl_children = cv; nl_high_keys = kv }
  | Ixlog.Nl_insert_child { child_idx; sep_idx; sep; child } ->
      let n = Page.as_nonleaf page in
      if child_idx > Vec.length n.Page.nl_children || sep_idx > Vec.length n.Page.nl_high_keys then
        fail page "nl_insert_child out of range";
      Vec.insert n.Page.nl_children child_idx child;
      Vec.insert n.Page.nl_high_keys sep_idx sep;
      n.Page.nl_sm_bit <- true
  | Ixlog.Nl_remove_child { child_idx; child; sep_idx; sep; level = _ } ->
      let n = Page.as_nonleaf page in
      if child_idx >= Vec.length n.Page.nl_children || Vec.get n.Page.nl_children child_idx <> child
      then fail page "nl_remove_child: child %d not at index %d" child child_idx;
      ignore (Vec.remove n.Page.nl_children child_idx);
      (match sep with
      | Some k ->
          if sep_idx >= Vec.length n.Page.nl_high_keys
             || Key.compare (Vec.get n.Page.nl_high_keys sep_idx) k <> 0
          then fail page "nl_remove_child: separator mismatch at %d" sep_idx
          else ignore (Vec.remove n.Page.nl_high_keys sep_idx)
      | None ->
          if Vec.length n.Page.nl_high_keys <> 0 then
            fail page "nl_remove_child: expected no separators left");
      n.Page.nl_sm_bit <- true
  | Ixlog.Anchor_set { new_root; new_height; _ } ->
      let a = Page.as_anchor page in
      a.Page.an_root <- new_root;
      a.Page.an_height <- new_height
  | Ixlog.Format_anchor { name; unique; root; height } ->
      page.Page.content <-
        Page.Anchor { Page.an_root = root; an_height = height; an_unique = unique; an_name = name }
  | Ixlog.Nl_truncate { keep_children; removed_children; removed_high_keys } ->
      let n = Page.as_nonleaf page in
      let nc = Vec.length n.Page.nl_children in
      if keep_children + List.length removed_children <> nc then
        fail page "nl_truncate arity mismatch: keep %d + removed %d <> %d" keep_children
          (List.length removed_children) nc;
      for _ = 1 to List.length removed_children do
        ignore (Vec.pop n.Page.nl_children)
      done;
      for _ = 1 to List.length removed_high_keys do
        ignore (Vec.pop n.Page.nl_high_keys)
      done;
      n.Page.nl_sm_bit <- true
  | Ixlog.Nl_restore { add_children; add_high_keys } ->
      let n = Page.as_nonleaf page in
      List.iter (Vec.push n.Page.nl_children) add_children;
      List.iter (Vec.push n.Page.nl_high_keys) add_high_keys;
      n.Page.nl_sm_bit <- false
  | Ixlog.Reset_bits { sm; delete } -> (
      match page.Page.content with
      | Page.Leaf l ->
          if sm then l.Page.lf_sm_bit <- false;
          if delete then l.Page.lf_delete_bit <- false
      | Page.Nonleaf n -> if sm then n.Page.nl_sm_bit <- false
      | Page.Data _ | Page.Anchor _ -> fail page "reset_bits on non-index page")

let undo_body (body : Ixlog.body) : Ixlog.body option =
  match body with
  | Ixlog.Insert_key _ | Ixlog.Delete_key _ ->
      None (* the page-oriented-vs-logical decision lives in Btree *)
  | Ixlog.Format_leaf _ ->
      (* the page did not exist before: compensate by emptying it *)
      Some
        (Ixlog.Format_leaf
           { keys = []; prev = Aries_util.Ids.nil_page; next = Aries_util.Ids.nil_page; sm_bit = false })
  | Ixlog.Leaf_truncate { removed; old_next; _ } ->
      Some (Ixlog.Leaf_restore { add_keys = removed; set_prev = None; set_next = Some old_next })
  | Ixlog.Leaf_restore _ -> None (* only appears as a CLR body *)
  | Ixlog.Leaf_relink { old_prev; old_next; _ } ->
      Some (Ixlog.Leaf_restore { add_keys = []; set_prev = Some old_prev; set_next = Some old_next })
  | Ixlog.Leaf_unlink { old_prev; old_next } ->
      Some (Ixlog.Leaf_restore { add_keys = []; set_prev = Some old_prev; set_next = Some old_next })
  | Ixlog.Format_nonleaf _ ->
      Some (Ixlog.Format_nonleaf { level = 1; children = []; high_keys = []; sm_bit = false })
  | Ixlog.Nl_insert_child { child_idx; sep_idx; sep; child } ->
      (* [level] is only consulted when compensating a removal with no
         separator; a removal with a separator never looks at it *)
      Some (Ixlog.Nl_remove_child { child_idx; child; sep_idx; sep = Some sep; level = 0 })
  | Ixlog.Nl_remove_child { child_idx; child; sep_idx; sep; level } -> (
      match sep with
      | Some sep -> Some (Ixlog.Nl_insert_child { child_idx; sep_idx; sep; child })
      | None ->
          (* the removal emptied the page (only child): rebuild it *)
          Some (Ixlog.Format_nonleaf { level; children = [ child ]; high_keys = []; sm_bit = false }))
  | Ixlog.Anchor_set { old_root; new_root; old_height; new_height } ->
      Some
        (Ixlog.Anchor_set
           { old_root = new_root; new_root = old_root; old_height = new_height; new_height = old_height })
  | Ixlog.Nl_truncate { removed_children; removed_high_keys; _ } ->
      Some (Ixlog.Nl_restore { add_children = removed_children; add_high_keys = removed_high_keys })
  | Ixlog.Nl_restore _ -> None (* only appears as a CLR body *)
  | Ixlog.Format_anchor _ -> None (* index creation is never partially undone in place *)
  | Ixlog.Reset_bits _ -> None
