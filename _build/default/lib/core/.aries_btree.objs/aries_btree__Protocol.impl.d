lib/core/protocol.ml: Aries_lock Aries_page Aries_util Format Ids Printf
