lib/core/btree.ml: Apply Aries_buffer Aries_lock Aries_page Aries_sched Aries_txn Aries_util Aries_wal Fun Hashtbl Ids Ixlog List Option Printf Protocol Stats String Vec
