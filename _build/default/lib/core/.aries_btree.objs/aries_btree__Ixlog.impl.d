lib/core/ixlog.ml: Aries_page Aries_util Bytebuf Format Ids List Printf
