lib/core/btree.mli: Aries_buffer Aries_page Aries_txn Aries_util Ids Protocol
