lib/core/apply.ml: Aries_page Aries_util Ixlog List Printf
