lib/core/protocol.mli: Aries_lock Aries_page Aries_util Format Ids
