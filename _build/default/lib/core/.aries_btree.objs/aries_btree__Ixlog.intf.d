lib/core/ixlog.mli: Aries_page Aries_util Format Ids
