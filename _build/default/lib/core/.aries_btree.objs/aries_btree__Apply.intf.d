lib/core/apply.mli: Aries_page Ixlog
