(** Page-oriented application of index log bodies.

    One function applies a body to its page, used identically by forward
    processing, restart redo, media recovery, and CLR application — which is
    what guarantees that "redo repeats history" is literally true. Never
    touches LSNs, logging or latches: the caller owns those. *)

module Page = Aries_page.Page

val apply : Page.t -> Ixlog.body -> unit
(** Mutates the page. Raises [Invalid_argument] on a shape mismatch (key
    already present for an insert, absent for a delete, wrong page kind) —
    such a mismatch always indicates a protocol bug or corrupt recovery,
    never a legal state. *)

val undo_body : Ixlog.body -> Ixlog.body option
(** The compensating body for a page-oriented undo of this body on the same
    page, or [None] if the opcode is redo-only ([Reset_bits]) or needs
    context ([Insert_key]/[Delete_key] undo decisions live in {!Btree}). *)
