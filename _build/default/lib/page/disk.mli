(** The simulated nonvolatile store.

    Holds only serialized page images — the "disk version of the data base".
    A system crash does not touch it (the buffer pool and volatile log tail
    are what disappear); a {e media} failure is simulated by [corrupt].

    Page allocation hands out fresh page ids from a counter that is part of
    stable state. Freed page ids are not reused (documented simplification:
    the paper defers free-space management to the underlying storage
    manager; non-reuse sidesteps the deallocate-before-commit problem
    without affecting any protocol being studied). *)

open Aries_util

type t

val create : ?page_size:int -> unit -> t
(** Default page size 4096 bytes. Tests use small pages to force SMOs. *)

val page_size : t -> int

val alloc_pid : t -> Ids.page_id
(** A fresh, never-before-returned page id (> 0). Stable across crashes. *)

val note_pid : t -> Ids.page_id -> unit
(** Ensure the allocator never re-issues [pid]; used when redo recreates a
    page that was allocated before a crash. *)

val read : t -> Ids.page_id -> Page.t option
(** Deserializes a fresh in-memory page from the stored image. *)

val write : t -> Page.t -> unit
(** Serializes and stores the page image (counted as a page write). The
    caller (buffer manager) is responsible for the WAL rule. *)

val exists : t -> Ids.page_id -> bool

val free : t -> Ids.page_id -> unit
(** Drop the stored image (page deallocated by an SMO and flushed state). *)

val pids : t -> Ids.page_id list
(** Sorted ids of all stored pages. *)

val image_copy : t -> t
(** A fuzzy archive dump: snapshot of current images (pages may contain
    uncommitted data — media recovery replays the log over them). *)

val corrupt : t -> Ids.page_id -> unit
(** Simulate a media failure of one page: subsequent [read] returns [None]. *)

val page_count : t -> int

val serialize : t -> bytes
(** The full stable state (page images + allocator), for {!deserialize}. *)

val deserialize : bytes -> t
