lib/page/page.mli: Aries_sched Aries_util Aries_wal Format Ids Key Vec
