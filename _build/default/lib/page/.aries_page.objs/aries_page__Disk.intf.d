lib/page/disk.mli: Aries_util Ids Page
