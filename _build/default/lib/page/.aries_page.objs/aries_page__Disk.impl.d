lib/page/disk.ml: Aries_util Bytebuf Hashtbl Ids List Page Stats
