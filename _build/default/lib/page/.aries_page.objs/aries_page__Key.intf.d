lib/page/key.mli: Aries_util Bytebuf Format Ids
