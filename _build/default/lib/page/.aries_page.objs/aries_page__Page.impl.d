lib/page/page.ml: Aries_sched Aries_util Aries_wal Bytebuf Bytes Format Ids Key Printf Vec
