lib/page/key.ml: Aries_util Bytebuf Format Ids Printf String
