open Aries_util

type t = {
  value : string;
  rid : Ids.rid;
}

let make value rid = { value; rid }

let compare a b =
  match String.compare a.value b.value with
  | 0 -> Ids.compare_rid a.rid b.rid
  | c -> c

let compare_value k v = String.compare k.value v

let equal a b = compare a b = 0

let encode w k =
  Bytebuf.W.string w k.value;
  Bytebuf.W.i64 w k.rid.Ids.rid_page;
  Bytebuf.W.u32 w k.rid.Ids.rid_slot

let decode r =
  let value = Bytebuf.R.string r in
  let rid_page = Bytebuf.R.i64 r in
  let rid_slot = Bytebuf.R.u32 r in
  { value; rid = { Ids.rid_page; rid_slot } }

(* value bytes + 6B rid + 2B length + 2B slot-directory entry *)
let on_page_cost k = String.length k.value + 10

let pp ppf k = Format.fprintf ppf "%S@%a" k.value Ids.pp_rid k.rid

let to_string k = Printf.sprintf "%S@%s" k.value (Ids.rid_to_string k.rid)
