(** Index keys.

    A key in a leaf page is a (key-value, record-ID) pair (§1.1); the RID
    makes every key unique even in a nonunique index, which is what lets
    ARIES/IM lock {e keys} (RIDs, under data-only locking) rather than key
    values. Nonleaf high keys reuse the same representation. *)

open Aries_util

type t = {
  value : string;
  rid : Ids.rid;
}

val make : string -> Ids.rid -> t

val compare : t -> t -> int
(** Lexicographic on value, then RID — a total order. *)

val compare_value : t -> string -> int
(** Compare a key's value component with a search value. *)

val equal : t -> t -> bool

val encode : Bytebuf.W.t -> t -> unit

val decode : Bytebuf.R.t -> t

val on_page_cost : t -> int
(** Bytes this key consumes in a page, including slot overhead. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
