(** S/X latches (short-duration physical-consistency locks, [MHLPS92]).

    Latches differ from locks (cf. {!Aries_lock}) exactly as in the paper:
    they are cheap, have no deadlock detection, and are expected to be held
    only across short critical sections. Deadlock freedom is the caller's
    responsibility via ordering (parent before child, leaf before next
    leaf); a latch deadlock manifests as a scheduler stall in tests.

    Latches are not re-entrant: a fiber acquiring a latch it already holds
    is a protocol bug and raises [Invalid_argument] (an X self-acquire would
    otherwise self-deadlock silently). *)

type t

type mode = S | X

type kind = Page | Tree
(** Only affects which instrumentation counters are bumped. *)

val create : ?kind:kind -> string -> t

val name : t -> string

val acquire : t -> mode -> unit
(** Unconditional: suspends the fiber until granted (FIFO, no barging past
    queued waiters). *)

val try_acquire : t -> mode -> bool
(** Conditional: grants only if compatible with current holders {e and} no
    fiber is queued (preserves fairness). Never suspends. *)

val release : t -> unit
(** Release the calling fiber's hold. Raises if it holds nothing. *)

val instant : t -> mode -> unit
(** [acquire] immediately followed by [release] — the paper's
    "instant duration" latch, used to wait for an SMO to complete. *)

val holds : t -> bool
(** Does the calling fiber hold this latch (any mode)? *)

val holds_mode : t -> mode -> bool

val holder_count : t -> int

val waiter_count : t -> int

val pp_mode : Format.formatter -> mode -> unit
