lib/sched/latch.ml: Aries_util Format List Printf Sched
