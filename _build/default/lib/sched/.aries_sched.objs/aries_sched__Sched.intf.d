lib/sched/sched.mli:
