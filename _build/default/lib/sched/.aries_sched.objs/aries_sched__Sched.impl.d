lib/sched/sched.ml: Aries_util Effect Hashtbl List Printf
