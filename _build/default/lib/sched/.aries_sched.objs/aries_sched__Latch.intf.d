lib/sched/latch.mli: Format
