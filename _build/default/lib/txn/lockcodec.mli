(** Binary codec for lock names and modes, used by Prepare record bodies
    (restart lock reacquisition for in-doubt transactions). *)

open Aries_util
module Lockmgr = Aries_lock.Lockmgr

val encode_list : (Lockmgr.name * Lockmgr.mode) list -> bytes

val decode_list : bytes -> (Lockmgr.name * Lockmgr.mode) list

val encode_name : Bytebuf.W.t -> Lockmgr.name -> unit

val decode_name : Bytebuf.R.t -> Lockmgr.name
