lib/txn/lockcodec.mli: Aries_lock Aries_util Bytebuf
