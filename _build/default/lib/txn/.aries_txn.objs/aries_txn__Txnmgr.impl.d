lib/txn/txnmgr.ml: Aries_lock Aries_sched Aries_util Aries_wal Bytebuf Bytes Hashtbl Ids List Lockcodec Printf
