lib/txn/lockcodec.ml: Aries_lock Aries_util Bytebuf Ids List Printf
