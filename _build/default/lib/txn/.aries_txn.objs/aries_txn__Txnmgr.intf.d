lib/txn/txnmgr.mli: Aries_lock Aries_util Aries_wal Ids
