(** Fuzzy checkpoints.

    A checkpoint brackets a Begin_ckpt/End_ckpt pair; the End_ckpt body
    carries the transaction table and the dirty-page table (page id →
    recLSN). Nothing is forced to disk and no activity is quiesced — the
    analysis pass reconciles whatever happened concurrently, which is what
    makes the checkpoint "fuzzy". The master record points at the most
    recent Begin_ckpt. *)

open Aries_util
module Lsn = Aries_wal.Lsn

type body = {
  ck_txns : (Ids.txn_id * Aries_txn.Txnmgr.state * Lsn.t * Lsn.t) list;
      (** (id, state, last_lsn, undo_nxt) *)
  ck_dpt : (Ids.page_id * Lsn.t) list;  (** (page, recLSN) *)
}

val take : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> Lsn.t
(** Write a checkpoint, update the master record, force the log. Returns
    the Begin_ckpt LSN. *)

val encode_body : body -> bytes

val decode_body : bytes -> body
