open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Txnmgr = Aries_txn.Txnmgr
module Bufpool = Aries_buffer.Bufpool
module Disk = Aries_page.Disk
module Page = Aries_page.Page

type dump = {
  dmp_disk : Disk.t;
  dmp_redo_lsn : Lsn.t;
}

let take_dump mgr pool =
  let begin_lsn = Checkpoint.take mgr pool in
  (* The checkpointed DPT bounds what the dump images might be missing:
     everything below the minimum recLSN is on disk. Conservative and
     simple: replay from the checkpoint's redo point. *)
  let dpt = Bufpool.dirty_page_table pool in
  let redo_lsn = List.fold_left (fun acc (_, rec_lsn) -> Lsn.min acc rec_lsn) begin_lsn dpt in
  { dmp_disk = Disk.image_copy (Bufpool.disk pool); dmp_redo_lsn = redo_lsn }

let dump_redo_lsn d = d.dmp_redo_lsn

let recover_page mgr pool dump pid =
  let wal = Txnmgr.log mgr in
  let disk = Bufpool.disk pool in
  (* drop whatever damaged frame/image might linger *)
  Bufpool.drop pool pid;
  (match Disk.read dump.dmp_disk pid with
  | Some page -> Disk.write disk page
  | None -> Disk.free disk pid);
  let applied = ref 0 in
  Logmgr.iter_from wal dump.dmp_redo_lsn (fun r ->
      if r.Logrec.page = pid then begin
        let redoable =
          match r.Logrec.kind with
          | Logrec.Update -> r.Logrec.redoable
          | Logrec.Clr -> r.Logrec.rm_id <> 0
          | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn
          | Logrec.Begin_ckpt | Logrec.End_ckpt ->
              false
        in
        if redoable then begin
          let stale =
            match Bufpool.fix_opt pool pid with
            | Some p ->
                let s = Lsn.( < ) p.Page.page_lsn r.Logrec.lsn in
                Bufpool.unfix pool p;
                s
            | None -> true  (* page does not exist yet: format record recreates *)
          in
          if stale then begin
            Txnmgr.rm_redo mgr r;
            incr applied
          end
        end
      end);
  (* the roll-forward dirtied the page in the pool; force it out so the
     repaired image is durable *)
  Bufpool.flush_page pool pid;
  Stats.incr "media.page_recoveries";
  !applied
