(** Restart recovery: the three ARIES passes.

    {b Analysis} scans from the last complete checkpoint to the end of the
    (stable) log, rebuilding the transaction table and dirty-page table and
    computing the redo point.

    {b Redo} repeats history: every redoable update (including CLRs and the
    updates of loser transactions) whose page might be stale is reapplied,
    strictly page-oriented — the page named in the record is fixed and the
    LSN test decides; no index is ever traversed (experiment Q3 counts
    this).

    {b Undo} rolls back all loser transactions in a single reverse sweep of
    the log, taking the record with the highest undo-next LSN across losers
    at each step. Resource-manager undo may be page-oriented or logical —
    that policy lives in the resource manager (the heart of ARIES/IM, §3);
    the pass itself only drives the sweep. Prepared (in-doubt) transactions
    are not rolled back: their locks are reacquired from the Prepare record
    body and they remain in the table awaiting the commit coordinator.

    Repeating history makes the whole procedure idempotent: a crash during
    any pass simply causes the next restart to do the remaining work. *)

open Aries_util
module Lsn = Aries_wal.Lsn

type report = {
  rp_redo_lsn : Lsn.t;  (** where the redo scan started *)
  rp_records_analyzed : int;
  rp_records_redo_scanned : int;
  rp_redos_applied : int;
  rp_redos_skipped : int;  (** LSN test said the page was already current *)
  rp_redo_traversals : int;
      (** index traversals performed during the redo pass — always 0: redo is
          strictly page-oriented (experiment Q3 reports this) *)
  rp_undo_records : int;  (** loser records processed by the undo sweep *)
  rp_losers : Ids.txn_id list;
  rp_indoubt : Ids.txn_id list;
  rp_locks_reacquired : int;
}

val run : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> report
(** Run all three passes. The transaction manager must be freshly cleared
    (post-crash); resource managers must already be registered. Finishes
    with a checkpoint so the next restart is cheap. *)

val pp_report : Format.formatter -> report -> unit
