(** Media recovery (§5): page-oriented recovery of indexes and data from a
    fuzzy image copy plus the log.

    A dump is taken without quiescing anything: it snapshots the current
    disk images (which may contain uncommitted or torn-across-pages state)
    together with a {e redo point} — an LSN from which rolling the log
    forward over the dump reconstructs the current page contents. When a
    page later becomes unreadable, it is reloaded from the dump and brought
    up to date by replaying just that page's log records, with the usual
    page_LSN test. No tree traversal is involved. *)

open Aries_util
module Lsn = Aries_wal.Lsn

type dump

val take_dump : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> dump
(** Fuzzy image copy of the whole store. Internally takes a checkpoint
    first so the dump's redo point is well defined and recent. *)

val dump_redo_lsn : dump -> Lsn.t

val recover_page : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> dump -> Ids.page_id -> int
(** Restore one lost page from the dump and roll it forward. Returns the
    number of log records applied. The page must not be fixed by anyone.
    After return the authoritative current version is on disk. *)
