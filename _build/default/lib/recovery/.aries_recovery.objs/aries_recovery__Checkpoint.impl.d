lib/recovery/checkpoint.ml: Aries_buffer Aries_txn Aries_util Aries_wal Bytebuf Ids List Stats
