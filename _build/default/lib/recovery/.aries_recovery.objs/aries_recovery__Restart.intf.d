lib/recovery/restart.mli: Aries_buffer Aries_txn Aries_util Aries_wal Format Ids
