lib/recovery/restart.ml: Aries_buffer Aries_lock Aries_page Aries_txn Aries_util Aries_wal Checkpoint Format Hashtbl Ids List Stats String
