lib/recovery/media.ml: Aries_buffer Aries_page Aries_txn Aries_util Aries_wal Checkpoint List Stats
