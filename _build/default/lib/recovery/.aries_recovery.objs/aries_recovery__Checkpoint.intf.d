lib/recovery/checkpoint.mli: Aries_buffer Aries_txn Aries_util Aries_wal Ids
