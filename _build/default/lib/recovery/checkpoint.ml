open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Txnmgr = Aries_txn.Txnmgr
module Bufpool = Aries_buffer.Bufpool

type body = {
  ck_txns : (Ids.txn_id * Txnmgr.state * Lsn.t * Lsn.t) list;
  ck_dpt : (Ids.page_id * Lsn.t) list;
}

let encode_body b =
  let w = Bytebuf.W.create () in
  Bytebuf.W.u32 w (List.length b.ck_txns);
  List.iter
    (fun (id, state, last_lsn, undo_nxt) ->
      Bytebuf.W.i64 w id;
      Bytebuf.W.u8 w (Txnmgr.state_to_int state);
      Bytebuf.W.i64 w last_lsn;
      Bytebuf.W.i64 w undo_nxt)
    b.ck_txns;
  Bytebuf.W.u32 w (List.length b.ck_dpt);
  List.iter
    (fun (pid, rec_lsn) ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.i64 w rec_lsn)
    b.ck_dpt;
  Bytebuf.W.contents w

let decode_body bytes =
  let r = Bytebuf.R.of_bytes bytes in
  let ntxn = Bytebuf.R.u32 r in
  let rec txns i acc =
    if i = ntxn then List.rev acc
    else begin
      let id = Bytebuf.R.i64 r in
      let state = Txnmgr.state_of_int (Bytebuf.R.u8 r) in
      let last_lsn = Bytebuf.R.i64 r in
      let undo_nxt = Bytebuf.R.i64 r in
      txns (i + 1) ((id, state, last_lsn, undo_nxt) :: acc)
    end
  in
  let ck_txns = txns 0 [] in
  let ndpt = Bytebuf.R.u32 r in
  let rec dpt i acc =
    if i = ndpt then List.rev acc
    else begin
      let pid = Bytebuf.R.i64 r in
      let rec_lsn = Bytebuf.R.i64 r in
      dpt (i + 1) ((pid, rec_lsn) :: acc)
    end
  in
  let ck_dpt = dpt 0 [] in
  Bytebuf.R.expect_end r;
  { ck_txns; ck_dpt }

let take mgr pool =
  let wal = Txnmgr.log mgr in
  let begin_rec = Logrec.make ~txn:Ids.nil_txn ~prev_lsn:Lsn.nil Logrec.Begin_ckpt in
  let begin_lsn = Logmgr.append wal begin_rec in
  let body =
    {
      ck_txns =
        List.map
          (fun (t : Txnmgr.txn) -> (t.Txnmgr.txn_id, t.Txnmgr.state, t.Txnmgr.last_lsn, t.Txnmgr.undo_nxt))
          (Txnmgr.active_txns mgr);
      ck_dpt = Bufpool.dirty_page_table pool;
    }
  in
  let end_rec =
    Logrec.make ~body:(encode_body body) ~txn:Ids.nil_txn ~prev_lsn:begin_lsn Logrec.End_ckpt
  in
  let end_lsn = Logmgr.append wal end_rec in
  Logmgr.set_master wal begin_lsn;
  Logmgr.flush_to wal end_lsn;
  Stats.incr "checkpoint.taken";
  begin_lsn
