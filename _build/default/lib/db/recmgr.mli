(** The record manager: slotted data pages organized into per-table heaps.

    Records live outside the index tree (§1.1); a key in a leaf page refers
    to its record by RID. Under data-only locking the commit-duration X
    lock taken here on the RID at insert/delete {e is} the index key lock.

    Slots are never reused while any transaction still holds the RID lock
    (an uncommitted delete must be able to reclaim its slot during
    rollback), and record redo/undo are always page-oriented. *)

open Aries_util
module Txnmgr = Aries_txn.Txnmgr

type heap

val rm_install : Txnmgr.t -> Aries_buffer.Bufpool.t -> unit
(** Register the record resource manager. Call once per environment. *)

val create_heap : Txnmgr.t -> Aries_buffer.Bufpool.t -> Txnmgr.txn -> owner:int -> heap
(** A new heap (one logged, empty data page) created within the given
    transaction. *)

val open_heaps : Txnmgr.t -> Aries_buffer.Bufpool.t -> (int * heap) list
(** Rediscover every heap on disk by owner id (post-restart). *)

val owner : heap -> int

val insert : heap -> Txnmgr.txn -> bytes -> Ids.rid
(** X-lock (commit) a fresh RID, then insert and log. *)

val delete : heap -> Txnmgr.txn -> Ids.rid -> bytes
(** Requires the caller to hold the RID X lock. Returns the old image. *)

val update : heap -> Txnmgr.txn -> Ids.rid -> bytes -> bytes
(** Replace the record in place; returns the old image. The caller holds
    the RID X lock. Fails if the new image does not fit the page (records
    do not move). *)

val read : heap -> Ids.rid -> bytes option
(** Latch-only read ([None] for a tombstone); locking is the caller's
    business (under data-only locking the index manager already locked the
    record). *)

val page_ids : heap -> Ids.page_id list

val record_count : heap -> int
