open Aries_util

let rm_id = 2

type body =
  | Rec_insert of { rid : Ids.rid; data : bytes }
  | Rec_delete of { rid : Ids.rid; data : bytes }
  | Rec_update of { rid : Ids.rid; old_data : bytes; new_data : bytes }
  | Format_data of { owner : int }

let op_of_body = function
  | Rec_insert _ -> 1
  | Rec_delete _ -> 2
  | Rec_update _ -> 3
  | Format_data _ -> 4

let op_name = function
  | 1 -> "rec_insert"
  | 2 -> "rec_delete"
  | 3 -> "rec_update"
  | 4 -> "format_data"
  | n -> Printf.sprintf "rec-op-%d" n

let write_rid w (rid : Ids.rid) =
  Bytebuf.W.i64 w rid.Ids.rid_page;
  Bytebuf.W.u32 w rid.Ids.rid_slot

let read_rid r =
  let rid_page = Bytebuf.R.i64 r in
  let rid_slot = Bytebuf.R.u32 r in
  { Ids.rid_page; rid_slot }

let encode body =
  let w = Bytebuf.W.create () in
  (match body with
  | Rec_insert { rid; data } ->
      write_rid w rid;
      Bytebuf.W.bytes w data
  | Rec_delete { rid; data } ->
      write_rid w rid;
      Bytebuf.W.bytes w data
  | Rec_update { rid; old_data; new_data } ->
      write_rid w rid;
      Bytebuf.W.bytes w old_data;
      Bytebuf.W.bytes w new_data
  | Format_data { owner } -> Bytebuf.W.i64 w owner);
  Bytebuf.W.contents w

let decode ~op bytes =
  let r = Bytebuf.R.of_bytes bytes in
  let body =
    match op with
    | 1 ->
        let rid = read_rid r in
        let data = Bytebuf.R.bytes r in
        Rec_insert { rid; data }
    | 2 ->
        let rid = read_rid r in
        let data = Bytebuf.R.bytes r in
        Rec_delete { rid; data }
    | 3 ->
        let rid = read_rid r in
        let old_data = Bytebuf.R.bytes r in
        let new_data = Bytebuf.R.bytes r in
        Rec_update { rid; old_data; new_data }
    | 4 -> Format_data { owner = Bytebuf.R.i64 r }
    | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad record op %d" n))
  in
  Bytebuf.R.expect_end r;
  body
