(** Tables: a heap of records plus any number of ARIES/IM indexes, bound
    together under hierarchical locking (IS/IX on the table, record/key
    locks below).

    This layer realizes the paper's {e data-only locking} architecture
    (§2.1): on insert and delete the record manager takes the
    commit-duration X lock on the RID, and the index manager then needs
    {e no} current-key lock — the RID lock covers every key of the record.
    On fetch, the index manager's key lock covers the record, so the record
    manager reads without locking. Under the index-specific / KVL /
    System R protocols the record lock is taken separately, which is
    exactly the extra cost experiment Q1 measures. *)

open Aries_util
module Txnmgr = Aries_txn.Txnmgr
module Btree = Aries_btree.Btree

type row = string array

type index_spec = {
  sp_name : string;
  sp_unique : bool;
  sp_key : row -> string;  (** key-value extractor *)
}

type t

val create : Db.t -> Txnmgr.txn -> id:int -> index_spec list -> t
(** Create the heap and the indexes (index names are ["tbl<id>.<name>"]). *)

val open_existing : Db.t -> id:int -> index_spec list -> t
(** Re-open after restart: the heap is rediscovered from data-page owner
    tags, the index anchors by name scan. The specs must match creation. *)

val id : t -> int

val index : t -> string -> Btree.t

val indexes : t -> (index_spec * Btree.t) list

val heap : t -> Recmgr.heap

val insert : t -> Txnmgr.txn -> row -> Ids.rid

val delete : t -> Txnmgr.txn -> Ids.rid -> unit

val update : t -> Txnmgr.txn -> Ids.rid -> row -> unit
(** Re-keys exactly the indexes whose extracted value changed. *)

val read : t -> Txnmgr.txn -> Ids.rid -> row option
(** Direct RID read with an S record lock (no index involved). *)

val fetch : t -> Txnmgr.txn -> index:string -> string -> (Ids.rid * row) option
(** Unique-style point lookup through an index. *)

val scan :
  t ->
  Txnmgr.txn ->
  index:string ->
  ?comparison:[ `Ge | `Gt ] ->
  string ->
  ?stop:string * [ `Le | `Lt ] ->
  unit ->
  (Ids.rid * row) list
(** Range scan through an index, fetching each record. *)

val count : t -> int
(** Records currently in the heap (unlocked; test support). *)

val check_consistency : t -> unit
(** Cross-checks heap and indexes (unlocked; test support): every index
    entry resolves to a live record whose extracted key equals the entry's
    value; every record appears in every index exactly once; index
    structural invariants hold. Raises [Failure] on the first violation. *)

val encode_row : row -> bytes

val decode_row : bytes -> row
