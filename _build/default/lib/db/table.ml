open Aries_util
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Page = Aries_page.Page
module Disk = Aries_page.Disk
module Bufpool = Aries_buffer.Bufpool
module Key = Aries_page.Key

type row = string array

type index_spec = {
  sp_name : string;
  sp_unique : bool;
  sp_key : row -> string;
}

type t = {
  tb_id : int;
  tb_db : Db.t;
  tb_heap : Recmgr.heap;
  tb_indexes : (index_spec * Btree.t) list;
}

let id t = t.tb_id

let heap t = t.tb_heap

let indexes t = t.tb_indexes

let index t name =
  match List.find_opt (fun (sp, _) -> String.equal sp.sp_name name) t.tb_indexes with
  | Some (_, bt) -> bt
  | None -> invalid_arg (Printf.sprintf "Table %d: no index %s" t.tb_id name)

let encode_row row =
  let w = Bytebuf.W.create () in
  Bytebuf.W.u32 w (Array.length row);
  Array.iter (Bytebuf.W.string w) row;
  Bytebuf.W.contents w

let decode_row b =
  let r = Bytebuf.R.of_bytes b in
  let n = Bytebuf.R.u32 r in
  let row = Array.init n (fun _ -> Bytebuf.R.string r) in
  Bytebuf.R.expect_end r;
  row

let ix_name tb_id sp = Printf.sprintf "tbl%d.%s" tb_id sp.sp_name

let create (db : Db.t) txn ~id specs =
  let tb_heap = Recmgr.create_heap db.Db.mgr db.Db.pool txn ~owner:id in
  let tb_indexes =
    List.map
      (fun sp -> (sp, Btree.create db.Db.benv txn ~name:(ix_name id sp) ~unique:sp.sp_unique))
      specs
  in
  { tb_id = id; tb_db = db; tb_heap; tb_indexes }

let open_existing (db : Db.t) ~id specs =
  let tb_heap =
    match List.assoc_opt id (Recmgr.open_heaps db.Db.mgr db.Db.pool) with
    | Some h -> h
    | None -> invalid_arg (Printf.sprintf "Table.open_existing: no heap with owner %d" id)
  in
  (* find index anchors by name; check the pool too, since redo may have
     rebuilt a never-flushed anchor only in the buffer *)
  let disk = db.Db.disk in
  let candidates =
    List.sort_uniq compare (Disk.pids disk @ Bufpool.resident_pids db.Db.pool)
  in
  let anchors =
    List.filter_map
      (fun pid ->
        match Bufpool.fix_opt db.Db.pool pid with
        | Some page ->
            let r =
              match page.Page.content with
              | Page.Anchor a -> Some (a.Page.an_name, pid)
              | Page.Leaf _ | Page.Nonleaf _ | Page.Data _ -> None
            in
            Bufpool.unfix db.Db.pool page;
            r
        | None -> None)
      candidates
  in
  let tb_indexes =
    List.map
      (fun sp ->
        match List.assoc_opt (ix_name id sp) anchors with
        | Some pid -> (sp, Btree.open_existing db.Db.benv pid)
        | None ->
            invalid_arg (Printf.sprintf "Table.open_existing: index %s not found" (ix_name id sp)))
      specs
  in
  { tb_id = id; tb_db = db; tb_heap; tb_indexes }

let table_lock t txn mode = Txnmgr.lock t.tb_db.Db.mgr txn (Lockmgr.Table t.tb_id) mode Lockmgr.Commit

let insert t txn row =
  table_lock t txn Lockmgr.IX;
  (* the record manager takes the commit-duration X RID lock: under
     data-only locking this is the key lock for every index entry *)
  let rid = Recmgr.insert t.tb_heap txn (encode_row row) in
  List.iter (fun (sp, bt) -> Btree.insert bt txn ~value:(sp.sp_key row) ~rid) t.tb_indexes;
  rid

let delete t txn rid =
  table_lock t txn Lockmgr.IX;
  Txnmgr.lock t.tb_db.Db.mgr txn (Lockmgr.Rid rid) Lockmgr.X Lockmgr.Commit;
  let row =
    match Recmgr.read t.tb_heap rid with
    | Some b -> decode_row b
    | None -> invalid_arg (Printf.sprintf "Table.delete: no record at %s" (Ids.rid_to_string rid))
  in
  (* index entries first, then the record (the reverse of insert) *)
  List.iter (fun (sp, bt) -> Btree.delete bt txn ~value:(sp.sp_key row) ~rid) t.tb_indexes;
  ignore (Recmgr.delete t.tb_heap txn rid)

let update t txn rid row =
  table_lock t txn Lockmgr.IX;
  Txnmgr.lock t.tb_db.Db.mgr txn (Lockmgr.Rid rid) Lockmgr.X Lockmgr.Commit;
  let old_row =
    match Recmgr.read t.tb_heap rid with
    | Some b -> decode_row b
    | None -> invalid_arg (Printf.sprintf "Table.update: no record at %s" (Ids.rid_to_string rid))
  in
  List.iter
    (fun (sp, bt) ->
      let old_key = sp.sp_key old_row and new_key = sp.sp_key row in
      if not (String.equal old_key new_key) then begin
        Btree.delete bt txn ~value:old_key ~rid;
        Btree.insert bt txn ~value:new_key ~rid
      end)
    t.tb_indexes;
  ignore (Recmgr.update t.tb_heap txn rid (encode_row row))

let read t txn rid =
  table_lock t txn Lockmgr.IS;
  Txnmgr.lock t.tb_db.Db.mgr txn (Lockmgr.Rid rid) Lockmgr.S Lockmgr.Commit;
  Option.map decode_row (Recmgr.read t.tb_heap rid)

(* under index-specific/KVL/System-R locking the index key lock does not
   cover the record: lock the RID too (§2.1) *)
let record_fetch_lock t txn bt rid =
  if Protocol.fetch_locks_record_too (Btree.config bt).Btree.locking then
    Txnmgr.lock t.tb_db.Db.mgr txn (Lockmgr.Rid rid) Lockmgr.S Lockmgr.Commit

let fetch t txn ~index:name value =
  table_lock t txn Lockmgr.IS;
  let bt = index t name in
  match Btree.fetch bt txn ~comparison:`Eq value with
  | None -> None
  | Some key ->
      let rid = key.Key.rid in
      record_fetch_lock t txn bt rid;
      (match Recmgr.read t.tb_heap rid with
      | Some b -> Some (rid, decode_row b)
      | None ->
          invalid_arg
            (Printf.sprintf "Table.fetch: dangling index entry %s -> %s" value
               (Ids.rid_to_string rid)))

let scan t txn ~index:name ?(comparison = `Ge) value ?stop () =
  table_lock t txn Lockmgr.IS;
  let bt = index t name in
  let cursor = Btree.open_scan bt txn ~comparison value in
  let rec go acc =
    match Btree.fetch_next bt txn cursor ?stop () with
    | None -> List.rev acc
    | Some key ->
        let rid = key.Key.rid in
        record_fetch_lock t txn bt rid;
        (match Recmgr.read t.tb_heap rid with
        | Some b -> go ((rid, decode_row b) :: acc)
        | None ->
            invalid_arg
              (Printf.sprintf "Table.scan: dangling index entry %s" (Ids.rid_to_string rid)))
  in
  go []

let count t = Recmgr.record_count t.tb_heap

let check_consistency t =
  let fail fmt = Printf.ksprintf (fun m -> failwith (Printf.sprintf "Table %d: %s" t.tb_id m)) fmt in
  (* collect all live records *)
  let records = Hashtbl.create 64 in
  List.iter
    (fun pid ->
      Bufpool.with_fix t.tb_db.Db.pool pid (fun page ->
          let d = Page.as_data page in
          Aries_util.Vec.iteri
            (fun slot b ->
              match b with
              | Some bytes ->
                  Hashtbl.replace records { Ids.rid_page = pid; rid_slot = slot } (decode_row bytes)
              | None -> ())
            d.Page.dt_slots))
    (Recmgr.page_ids t.tb_heap);
  List.iter
    (fun (sp, bt) ->
      Btree.check_invariants bt;
      let entries = Btree.to_list bt in
      (* every index entry points at a live record with the matching key *)
      List.iter
        (fun (value, rid) ->
          match Hashtbl.find_opt records rid with
          | None -> fail "index %s: dangling entry %s -> %s" sp.sp_name value (Ids.rid_to_string rid)
          | Some row ->
              if not (String.equal (sp.sp_key row) value) then
                fail "index %s: entry %s does not match record key %s" sp.sp_name value
                  (sp.sp_key row))
        entries;
      (* every record appears exactly once *)
      let by_rid = Hashtbl.create 64 in
      List.iter
        (fun (_, rid) ->
          if Hashtbl.mem by_rid rid then
            fail "index %s: record %s indexed twice" sp.sp_name (Ids.rid_to_string rid);
          Hashtbl.replace by_rid rid ())
        entries;
      Hashtbl.iter
        (fun rid _row ->
          if not (Hashtbl.mem by_rid rid) then
            fail "index %s: record %s missing from index" sp.sp_name (Ids.rid_to_string rid))
        records)
    t.tb_indexes
