lib/db/db.mli: Aries_btree Aries_buffer Aries_lock Aries_page Aries_recovery Aries_sched Aries_txn Aries_wal
