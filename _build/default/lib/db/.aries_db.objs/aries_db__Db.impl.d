lib/db/db.ml: Aries_btree Aries_buffer Aries_lock Aries_page Aries_recovery Aries_sched Aries_txn Aries_util Aries_wal Fun List Printf Recmgr String
