lib/db/table.ml: Aries_btree Aries_buffer Aries_lock Aries_page Aries_txn Aries_util Array Bytebuf Db Hashtbl Ids List Option Printf Recmgr String
