lib/db/reclog.mli: Aries_util Ids
