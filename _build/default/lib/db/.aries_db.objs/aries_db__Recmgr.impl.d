lib/db/recmgr.ml: Aries_buffer Aries_lock Aries_page Aries_sched Aries_txn Aries_util Aries_wal Bytes Fun Hashtbl Ids List Printf Reclog Vec
