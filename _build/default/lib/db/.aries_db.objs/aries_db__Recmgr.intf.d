lib/db/recmgr.mli: Aries_buffer Aries_txn Aries_util Ids
