lib/db/table.mli: Aries_btree Aries_txn Aries_util Db Ids Recmgr
