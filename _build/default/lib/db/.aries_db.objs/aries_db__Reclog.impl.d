lib/db/reclog.ml: Aries_util Bytebuf Ids Printf
