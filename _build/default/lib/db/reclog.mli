(** Record-manager log bodies (rm_id {!rm_id}).

    Records never move between pages (RIDs are stable), so record-manager
    redo {e and} undo are always page-oriented — the contrast ARIES/IM
    draws with index keys, which do move (§3). *)

open Aries_util

val rm_id : int

type body =
  | Rec_insert of { rid : Ids.rid; data : bytes }
  | Rec_delete of { rid : Ids.rid; data : bytes  (** old image, for undo *) }
  | Rec_update of { rid : Ids.rid; old_data : bytes; new_data : bytes }
  | Format_data of { owner : int }

val encode : body -> bytes

val decode : op:int -> bytes -> body

val op_of_body : body -> int

val op_name : int -> string
