lib/lock/lockmgr.mli: Aries_util Format Ids
