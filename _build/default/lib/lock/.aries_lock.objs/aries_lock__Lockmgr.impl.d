lib/lock/lockmgr.ml: Aries_sched Aries_util Format Hashtbl Ids List Printf Stats Vec
