(** Shared identifier types. All are plain integers so they cross codec
    boundaries cheaply; distinct names document intent at interfaces. *)

type page_id = int

type txn_id = int

type index_id = int

let nil_page : page_id = 0
(** Page 0 is never allocated; it marks "no page" in chains and log records. *)

let nil_txn : txn_id = 0

(** Record identifier: the (data page, slot) pair that names a record — and,
    under ARIES/IM data-only locking, also names the lock that covers every
    index key belonging to that record. *)
type rid = {
  rid_page : page_id;
  rid_slot : int;
}

let nil_rid = { rid_page = nil_page; rid_slot = 0 }

let compare_rid a b =
  match compare a.rid_page b.rid_page with
  | 0 -> compare a.rid_slot b.rid_slot
  | c -> c

let pp_rid ppf r = Format.fprintf ppf "(%d.%d)" r.rid_page r.rid_slot

let rid_to_string r = Printf.sprintf "%d.%d" r.rid_page r.rid_slot
