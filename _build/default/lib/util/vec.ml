type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let ensure t n x =
  if n > Array.length t.data then begin
    let cap = max 8 (max n (2 * Array.length t.data)) in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1) x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let insert t i x =
  if i < 0 || i > t.len then invalid_arg "Vec.insert: index out of bounds";
  ensure t (t.len + 1) x;
  Array.blit t.data i t.data (i + 1) (t.len - i);
  t.data.(i) <- x;
  t.len <- t.len + 1

let remove t i =
  check t i;
  let x = t.data.(i) in
  Array.blit t.data (i + 1) t.data i (t.len - i - 1);
  t.len <- t.len - 1;
  x

let swap_remove t i =
  check t i;
  let x = t.data.(i) in
  t.data.(i) <- t.data.(t.len - 1);
  t.len <- t.len - 1;
  x

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let find_index p t =
  let rec loop i =
    if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let to_array t = Array.sub t.data 0 t.len

let copy t = { data = Array.copy t.data; len = t.len }

let binary_search ~compare t key =
  let rec loop lo hi =
    (* invariant: all elements < lo compare below key, all >= hi above *)
    if lo >= hi then Error lo
    else
      let mid = (lo + hi) / 2 in
      let c = compare t.data.(mid) key in
      if c = 0 then Ok mid else if c < 0 then loop (mid + 1) hi else loop lo mid
  in
  loop 0 t.len
