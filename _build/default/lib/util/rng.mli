(** Deterministic pseudo-random number generator (splitmix64).

    Every source of nondeterminism in the system (scheduler choice, workload
    generation, victim selection tie-breaks) draws from an explicit [Rng.t]
    so that any run is reproducible from its seed. *)

type t

val create : int -> t
(** [create seed] makes a generator; equal seeds give equal streams. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A new generator with a stream independent of the parent's future draws. *)
