(** Growable array used for page entry arrays, run queues and log buffers. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Bounds-checked. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element. Raises [Invalid_argument] if empty. *)

val insert : 'a t -> int -> 'a -> unit
(** [insert t i x] shifts elements [i..] right and writes [x] at [i]. *)

val remove : 'a t -> int -> 'a
(** [remove t i] removes and returns element [i], shifting the tail left. *)

val swap_remove : 'a t -> int -> 'a
(** O(1) removal that does not preserve order. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val find_index : ('a -> bool) -> 'a t -> int option

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val copy : 'a t -> 'a t

val binary_search : compare:('a -> 'key -> int) -> 'a t -> 'key -> (int, int) result
(** [binary_search ~compare t key] is [Ok i] if element [i] compares equal to
    [key], or [Error i] where [i] is the insertion point that keeps the vector
    sorted. Requires the vector sorted w.r.t. [compare]. *)
