lib/util/vec.mli:
