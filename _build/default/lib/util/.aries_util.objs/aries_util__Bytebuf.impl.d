lib/util/bytebuf.ml: Buffer Bytes Char Int32 Int64 Printf String
