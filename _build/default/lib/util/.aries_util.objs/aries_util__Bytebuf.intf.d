lib/util/bytebuf.mli:
