lib/util/ids.ml: Format Printf
