lib/util/rng.mli:
