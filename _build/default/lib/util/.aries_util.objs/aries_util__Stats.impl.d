lib/util/stats.ml: Format Fun Hashtbl List Printf String
