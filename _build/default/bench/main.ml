(* The experiment harness: regenerates every figure-backed scenario (E series),
   every quantitative claim (Q series), and the Bechamel timing suites (T series).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e11 q1  # selected experiments
     dune exec bench/main.exe -- quick   # everything except timing
     dune exec bench/main.exe -- timing  # only the Bechamel suites

   See DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
   the paper-vs-measured record. *)

let ppf = Format.std_formatter

let run_experiments ids =
  List.iter
    (fun id ->
      match List.assoc_opt id Experiments.all with
      | Some f -> f ppf
      | None -> Format.fprintf ppf "unknown experiment %S@." id)
    ids

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Format.fprintf ppf "ARIES/IM experiment harness (see DESIGN.md, EXPERIMENTS.md)@.";
  (match args with
  | [] ->
      run_experiments (List.map fst Experiments.all);
      Timing.run_all ppf
  | [ "quick" ] -> run_experiments (List.map fst Experiments.all)
  | [ "timing" ] -> Timing.run_all ppf
  | ids -> run_experiments ids);
  Format.fprintf ppf "@.done.@."
