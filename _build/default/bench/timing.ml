(* Wall-clock micro-benchmarks (Bechamel): per-protocol operation latency,
   split-heavy insertion, scan throughput, and restart-recovery time as a
   function of log length. These quantify the paper's pathlength arguments
   (§5) on this substrate; the counter-based experiments (Q1-Q6) carry the
   protocol-level claims. *)

open Bechamel
open Workload
module Bufpool = Aries_buffer.Bufpool

(* one operation per run, on a pre-built tree; keys rotate so inserts do
   not collide *)
let op_test ~name ~locking ~op =
  let config = config_of locking in
  let db, tree = fresh ~page_size:4096 ~config () in
  seed_keys db tree 0 999;
  let counter = ref 0 in
  Test.make ~name (Staged.stage (fun () -> op db tree counter))

let insert_op db tree counter =
  incr counter;
  let i = 100_000 + !counter in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> Btree.insert tree txn ~value:(v i) ~rid:(rid i)))

let fetch_op db tree counter =
  incr counter;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> ignore (Btree.fetch tree txn (v (!counter mod 1000)))))

let delete_insert_op db tree counter =
  incr counter;
  let i = !counter mod 1000 in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          Btree.delete tree txn ~value:(v i) ~rid:(rid i);
          Btree.insert tree txn ~value:(v i) ~rid:(rid i)))

let scan_op db tree counter =
  incr counter;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let c = Btree.open_scan tree txn ~comparison:`Ge (v 100) in
          let rec go n =
            if n >= 50 then ()
            else match Btree.fetch_next tree txn c () with Some _ -> go (n + 1) | None -> ()
          in
          go 0))

(* restart time as a function of log length *)
let recovery_test n_ops =
  Test.make
    ~name:(Printf.sprintf "restart after %d ops" n_ops)
    (Staged.stage (fun () ->
         let db, tree = fresh ~page_size:4096 () in
         Db.run_exn db (fun () ->
             Db.with_txn db (fun txn ->
                 for i = 0 to n_ops - 1 do
                   Btree.insert tree txn ~value:(v i) ~rid:(rid i)
                 done));
         let db' = Db.crash db in
         ignore (Db.run_exn db' (fun () -> Db.restart db'))))

let split_heavy_test =
  Test.make ~name:"1000 inserts on 384B pages (split-heavy)"
    (Staged.stage (fun () ->
         let db, tree = fresh ~page_size:384 () in
         seed_keys db tree 0 999))

let protocol_suite op_name op =
  List.map
    (fun locking ->
      op_test
        ~name:(Printf.sprintf "%s/%s" op_name (Protocol.locking_to_string locking))
        ~locking ~op)
    protocols

let suites : (string * Test.t list) list =
  [
    ("T1: insert latency by locking protocol", protocol_suite "insert" insert_op);
    ("T2: fetch latency by locking protocol", protocol_suite "fetch" fetch_op);
    ( "T3: structure modification and scan costs",
      [
        split_heavy_test;
        op_test ~name:"delete+insert/data-only" ~locking:Protocol.Data_only ~op:delete_insert_op;
        op_test ~name:"scan-50/data-only" ~locking:Protocol.Data_only ~op:scan_op;
      ] );
    ("T4: restart recovery vs log length", [ recovery_test 500; recovery_test 2000; recovery_test 8000 ]);
  ]

let run_suite ppf (title, tests) =
  section ppf title;
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              if est > 1_000_000.0 then
                Format.fprintf ppf "  %-44s %10.2f ms/op@." name (est /. 1_000_000.0)
              else if est > 1_000.0 then
                Format.fprintf ppf "  %-44s %10.2f us/op@." name (est /. 1_000.0)
              else Format.fprintf ppf "  %-44s %10.0f ns/op@." name est
          | Some [] | None -> Format.fprintf ppf "  %-44s (no estimate)@." name)
        results)
    tests

let run_all ppf = List.iter (fun s -> run_suite ppf s) suites
