bench/timing.ml: Analyze Aries_buffer Bechamel Benchmark Btree Db Format Hashtbl List Measure Printf Protocol Staged Test Time Toolkit Workload
