bench/main.mli:
