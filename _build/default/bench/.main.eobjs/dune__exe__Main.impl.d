bench/main.ml: Array Experiments Format List Sys Timing
