bench/workload.ml: Aries_btree Aries_db Aries_sched Aries_txn Aries_util Aries_wal Format Ids List Printf Stats
