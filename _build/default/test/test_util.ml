(* Unit tests for the utility substrate: Vec, Rng, Bytebuf, Stats. *)

open Aries_util

(* ---------- Vec ---------- *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v)

let test_vec_insert_remove () =
  let v = Vec.of_list [ 1; 2; 4; 5 ] in
  Vec.insert v 2 3;
  Alcotest.(check (list int)) "insert middle" [ 1; 2; 3; 4; 5 ] (Vec.to_list v);
  Alcotest.(check int) "remove" 3 (Vec.remove v 2);
  Alcotest.(check (list int)) "after remove" [ 1; 2; 4; 5 ] (Vec.to_list v);
  Vec.insert v 0 0;
  Vec.insert v (Vec.length v) 6;
  Alcotest.(check (list int)) "insert at both ends" [ 0; 1; 2; 4; 5; 6 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec: index 1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      let e : int Vec.t = Vec.create () in
      ignore (Vec.pop e))

let test_vec_binary_search () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let cmp x k = compare x k in
  Alcotest.(check bool) "found" true (Vec.binary_search ~compare:cmp v 30 = Ok 2);
  Alcotest.(check bool) "absent low" true (Vec.binary_search ~compare:cmp v 5 = Error 0);
  Alcotest.(check bool) "absent mid" true (Vec.binary_search ~compare:cmp v 25 = Error 2);
  Alcotest.(check bool) "absent high" true (Vec.binary_search ~compare:cmp v 99 = Error 4)

let vec_model_prop ops =
  (* Vec behaves like a list under push/insert/remove *)
  let v = Vec.create () in
  let model = ref [] in
  List.iter
    (fun (op, x) ->
      let n = List.length !model in
      match op mod 3 with
      | 0 ->
          Vec.push v x;
          model := !model @ [ x ]
      | 1 ->
          let i = if n = 0 then 0 else abs x mod (n + 1) in
          Vec.insert v i x;
          model :=
            List.filteri (fun j _ -> j < i) !model
            @ [ x ]
            @ List.filteri (fun j _ -> j >= i) !model
      | _ ->
          if n > 0 then begin
            let i = abs x mod n in
            ignore (Vec.remove v i);
            model := List.filteri (fun j _ -> j <> i) !model
          end)
    ops;
  Vec.to_list v = !model

let qcheck_vec =
  QCheck.Test.make ~name:"Vec matches list model" ~count:200
    QCheck.(list (pair small_int small_int))
    vec_model_prop

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "same elements" true (sorted = Array.init 50 Fun.id)

(* ---------- Bytebuf ---------- *)

let test_bytebuf_roundtrip () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.u8 w 200;
  Bytebuf.W.u16 w 60000;
  Bytebuf.W.u32 w 4000000000;
  Bytebuf.W.i64 w (-123456789);
  Bytebuf.W.bool w true;
  Bytebuf.W.string w "hello\x00world";
  let r = Bytebuf.R.of_bytes (Bytebuf.W.contents w) in
  Alcotest.(check int) "u8" 200 (Bytebuf.R.u8 r);
  Alcotest.(check int) "u16" 60000 (Bytebuf.R.u16 r);
  Alcotest.(check int) "u32" 4000000000 (Bytebuf.R.u32 r);
  Alcotest.(check int) "i64" (-123456789) (Bytebuf.R.i64 r);
  Alcotest.(check bool) "bool" true (Bytebuf.R.bool r);
  Alcotest.(check string) "string" "hello\x00world" (Bytebuf.R.string r);
  Bytebuf.R.expect_end r

let test_bytebuf_truncation () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.i64 w 1;
  let b = Bytebuf.W.contents w in
  let short = Bytes.sub b 0 4 in
  let r = Bytebuf.R.of_bytes short in
  Alcotest.(check bool) "corrupt raised" true
    (match Bytebuf.R.i64 r with _ -> false | exception Bytebuf.Corrupt _ -> true)

let test_bytebuf_trailing () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.u8 w 1;
  Bytebuf.W.u8 w 2;
  let r = Bytebuf.R.of_bytes (Bytebuf.W.contents w) in
  ignore (Bytebuf.R.u8 r);
  Alcotest.(check bool) "trailing detected" true
    (match Bytebuf.R.expect_end r with () -> false | exception Bytebuf.Corrupt _ -> true)

let bytebuf_string_prop s =
  let w = Bytebuf.W.create () in
  Bytebuf.W.string w s;
  let r = Bytebuf.R.of_bytes (Bytebuf.W.contents w) in
  String.equal (Bytebuf.R.string r) s

let qcheck_bytebuf =
  QCheck.Test.make ~name:"Bytebuf string roundtrip (arbitrary bytes)" ~count:200 QCheck.string
    bytebuf_string_prop

(* ---------- Stats ---------- *)

let test_stats_counting () =
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      Stats.incr "a";
      Stats.incr "a";
      Stats.add "b" 5);
  Alcotest.(check int) "a" 2 (Stats.get s "a");
  Alcotest.(check int) "b" 5 (Stats.get s "b");
  Alcotest.(check int) "absent" 0 (Stats.get s "c")

let test_stats_sink_restored () =
  let outer = Stats.current () in
  let s = Stats.create () in
  (try Stats.with_sink s (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "sink restored after exception" true (Stats.current () == outer)

let test_stats_diff () =
  let s = Stats.create () in
  Stats.with_sink s (fun () -> Stats.add "x" 10);
  let snap = Stats.copy s in
  Stats.with_sink s (fun () -> Stats.add "x" 3);
  let d = Stats.diff s snap in
  Alcotest.(check int) "diff" 3 (Stats.get d "x")

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "insert/remove" `Quick test_vec_insert_remove;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "binary search" `Quick test_vec_binary_search;
          QCheck_alcotest.to_alcotest qcheck_vec;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "bytebuf",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytebuf_roundtrip;
          Alcotest.test_case "truncation" `Quick test_bytebuf_truncation;
          Alcotest.test_case "trailing" `Quick test_bytebuf_trailing;
          QCheck_alcotest.to_alcotest qcheck_bytebuf;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counting" `Quick test_stats_counting;
          Alcotest.test_case "sink restored" `Quick test_stats_sink_restored;
          Alcotest.test_case "diff" `Quick test_stats_diff;
        ] );
    ]
