(* Index log bodies: codec roundtrips for every opcode, and the central
   page-oriented-undo property: applying a body and then its [undo_body]
   compensation restores the page exactly (what makes partial-SMO rollback
   sound, §3). Also the pure locking-protocol tables of Figure 2. *)

open Aries_util
module Key = Aries_page.Key
module Page = Aries_page.Page
module Ixlog = Aries_btree.Ixlog
module Apply = Aries_btree.Apply
module Protocol = Aries_btree.Protocol
module Lockmgr = Aries_lock.Lockmgr

let k v p s = Key.make v { Ids.rid_page = p; rid_slot = s }

let bodies : Ixlog.body list =
  [
    Ixlog.Insert_key { ix = 7; key = k "abc" 1 2; reset_sm = true; reset_delete = false };
    Ixlog.Delete_key { ix = 7; key = k "abc" 1 2; reset_sm = false; set_sm = true; mark_delete_bit = true };
    Ixlog.Format_leaf { keys = [ k "a" 1 0; k "b" 1 1 ]; prev = 3; next = 4; sm_bit = true };
    Ixlog.Leaf_truncate { removed = [ k "x" 2 0 ]; old_next = 9; new_next = 10 };
    Ixlog.Leaf_restore { add_keys = [ k "x" 2 0 ]; set_prev = Some 1; set_next = None };
    Ixlog.Leaf_relink { old_prev = 1; new_prev = 2; old_next = 3; new_next = 4 };
    Ixlog.Leaf_unlink { old_prev = 5; old_next = 6 };
    Ixlog.Format_nonleaf { level = 2; children = [ 4; 5; 6 ]; high_keys = [ k "m" 1 0; k "s" 1 1 ]; sm_bit = false };
    Ixlog.Nl_insert_child { child_idx = 1; sep_idx = 0; sep = k "q" 1 9; child = 42 };
    Ixlog.Nl_remove_child { child_idx = 1; child = 42; sep_idx = 0; sep = Some (k "q" 1 9); level = 2 };
    Ixlog.Nl_truncate { keep_children = 2; removed_children = [ 6 ]; removed_high_keys = [ k "s" 1 1 ] };
    Ixlog.Nl_restore { add_children = [ 6 ]; add_high_keys = [ k "s" 1 1 ] };
    Ixlog.Anchor_set { old_root = 2; new_root = 9; old_height = 1; new_height = 2 };
    Ixlog.Format_anchor { name = "ix"; unique = true; root = 2; height = 0 };
    Ixlog.Reset_bits { sm = true; delete = true };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun body ->
      let op = Ixlog.op_of_body body in
      let body' = Ixlog.decode ~op (Ixlog.encode body) in
      Alcotest.(check bool) (Ixlog.op_name op) true (body = body'))
    bodies

let test_op_names_distinct () =
  let ops = List.map Ixlog.op_of_body bodies in
  Alcotest.(check int) "all opcodes distinct" (List.length ops)
    (List.length (List.sort_uniq compare ops))

(* ---------- apply/undo inverse property ---------- *)

let mk_leaf () =
  let page = Page.create ~psize:4096 ~pid:50 (Page.empty_leaf ()) in
  let l = Page.as_leaf page in
  List.iter (Vec.push l.Page.lf_keys) [ k "b" 1 1; k "d" 1 2; k "f" 1 3; k "h" 1 4 ];
  l.Page.lf_prev <- 49;
  l.Page.lf_next <- 51;
  page

let mk_nonleaf () =
  let page = Page.create ~psize:4096 ~pid:60 (Page.empty_nonleaf ~level:1) in
  let n = Page.as_nonleaf page in
  List.iter (Vec.push n.Page.nl_children) [ 70; 71; 72 ];
  List.iter (Vec.push n.Page.nl_high_keys) [ k "g" 1 0; k "p" 1 1 ];
  page

(* content equality modulo the SM bit (the compensation may legitimately
   clear a bit the forward action set, and vice versa; structure is what
   page-oriented undo must restore) *)
let same_structure a b =
  let norm p =
    let copy = Page.decode ~psize:p.Page.psize (Page.encode p) in
    (match copy.Page.content with
    | Page.Leaf l -> l.Page.lf_sm_bit <- false
    | Page.Nonleaf n -> n.Page.nl_sm_bit <- false
    | Page.Data _ | Page.Anchor _ -> ());
    copy.Page.page_lsn <- 0;
    Page.encode copy
  in
  Bytes.equal (norm a) (norm b)

let check_inverse mk body =
  let page = mk () in
  let before = Page.decode ~psize:page.Page.psize (Page.encode page) in
  Apply.apply page body;
  match Apply.undo_body body with
  | None -> Alcotest.failf "%s: expected an undo body" (Ixlog.op_name (Ixlog.op_of_body body))
  | Some comp ->
      Apply.apply page comp;
      Alcotest.(check bool)
        (Printf.sprintf "%s inverse" (Ixlog.op_name (Ixlog.op_of_body body)))
        true (same_structure page before)

let test_smo_undo_inverse () =
  check_inverse mk_leaf (Ixlog.Leaf_truncate { removed = [ k "f" 1 3; k "h" 1 4 ]; old_next = 51; new_next = 99 });
  check_inverse mk_leaf (Ixlog.Leaf_relink { old_prev = 49; new_prev = 80; old_next = 51; new_next = 81 });
  check_inverse mk_nonleaf (Ixlog.Nl_insert_child { child_idx = 1; sep_idx = 0; sep = k "e" 1 9; child = 90 });
  check_inverse mk_nonleaf
    (Ixlog.Nl_remove_child { child_idx = 1; child = 71; sep_idx = 0; sep = Some (k "g" 1 0); level = 1 });
  check_inverse mk_nonleaf
    (Ixlog.Nl_truncate { keep_children = 2; removed_children = [ 72 ]; removed_high_keys = [ k "p" 1 1 ] });
  let anchor = Page.create ~psize:4096 ~pid:1 (Page.empty_anchor ~name:"a" ~unique:false) in
  check_inverse (fun () -> anchor) (Ixlog.Anchor_set { old_root = 0; new_root = 5; old_height = 0; new_height = 1 })

let test_empty_leaf_unlink_inverse () =
  let page = Page.create ~psize:4096 ~pid:50 (Page.empty_leaf ()) in
  (Page.as_leaf page).Page.lf_prev <- 49;
  (Page.as_leaf page).Page.lf_next <- 51;
  check_inverse (fun () -> page) (Ixlog.Leaf_unlink { old_prev = 49; old_next = 51 })

let test_apply_shape_mismatch_detected () =
  let page = mk_leaf () in
  Alcotest.(check bool) "double insert rejected" true
    (match
       Apply.apply page (Ixlog.Insert_key { ix = 1; key = k "b" 1 1; reset_sm = false; reset_delete = false })
     with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "absent delete rejected" true
    (match
       Apply.apply page
         (Ixlog.Delete_key { ix = 1; key = k "zz" 9 9; reset_sm = false; set_sm = false; mark_delete_bit = false })
     with
    | () -> false
    | exception Invalid_argument _ -> true)

(* random structured bodies: codec roundtrip *)
let body_gen =
  QCheck.Gen.(
    let key_gen = map2 (fun v i -> k v (abs i mod 1000) (abs i mod 100)) string_small small_int in
    let keys_gen = list_size (int_bound 5) key_gen in
    oneof
      [
        map2
          (fun key b -> Ixlog.Insert_key { ix = 3; key; reset_sm = b; reset_delete = not b })
          key_gen bool;
        map2
          (fun key b ->
            Ixlog.Delete_key { ix = 3; key; reset_sm = b; set_sm = not b; mark_delete_bit = b })
          key_gen bool;
        map3
          (fun keys p n -> Ixlog.Format_leaf { keys; prev = abs p; next = abs n; sm_bit = true })
          keys_gen small_int small_int;
        map3
          (fun removed o n -> Ixlog.Leaf_truncate { removed; old_next = abs o; new_next = abs n })
          keys_gen small_int small_int;
        map
          (fun keys -> Ixlog.Leaf_restore { add_keys = keys; set_prev = None; set_next = Some 7 })
          keys_gen;
      ])

let qcheck_codec =
  QCheck.Test.make ~name:"random index bodies roundtrip" ~count:300
    (QCheck.make body_gen) (fun body ->
      let op = Ixlog.op_of_body body in
      Ixlog.decode ~op (Ixlog.encode body) = body)

(* ---------- the Figure-2 protocol tables as pure functions ---------- *)

let req_sig (r : Protocol.lock_req) =
  (Lockmgr.mode_to_string r.Protocol.lk_mode, Lockmgr.duration_to_string r.Protocol.lk_duration)

let test_figure2_tables () =
  let key = k "v" 1 1 in
  let next = Protocol.At (k "w" 1 2) in
  (* data-only *)
  Alcotest.(check (list (pair string string))) "DO insert" [ ("X", "instant") ]
    (List.map req_sig (Protocol.insert_locks Protocol.Data_only 1 ~unique:true ~key ~next ~value_exists:false));
  Alcotest.(check (list (pair string string))) "DO delete" [ ("X", "commit") ]
    (List.map req_sig (Protocol.delete_locks Protocol.Data_only 1 ~unique:true ~key ~next ~value_remains:false));
  Alcotest.(check (list (pair string string))) "DO fetch" [ ("S", "commit") ]
    (List.map req_sig (Protocol.fetch_locks Protocol.Data_only 1 ~current:(Protocol.At key)));
  (* index-specific: adds the current-key column of Figure 2 *)
  Alcotest.(check (list (pair string string))) "IS insert" [ ("X", "instant"); ("X", "commit") ]
    (List.map req_sig
       (Protocol.insert_locks Protocol.Index_specific 1 ~unique:true ~key ~next ~value_exists:false));
  Alcotest.(check (list (pair string string))) "IS delete" [ ("X", "commit"); ("X", "instant") ]
    (List.map req_sig
       (Protocol.delete_locks Protocol.Index_specific 1 ~unique:true ~key ~next ~value_remains:false));
  (* KVL nonunique duplicate insert degenerates to IX on the value *)
  Alcotest.(check (list (pair string string))) "KVL dup insert" [ ("IX", "commit") ]
    (List.map req_sig
       (Protocol.insert_locks Protocol.Kvl 1 ~unique:false ~key ~next ~value_exists:true));
  (* System R: commit duration everywhere *)
  Alcotest.(check (list (pair string string))) "SysR insert" [ ("X", "commit"); ("X", "commit") ]
    (List.map req_sig
       (Protocol.insert_locks Protocol.System_r 1 ~unique:true ~key ~next ~value_exists:false))

let test_lock_names_by_protocol () =
  let key = k "val" 3 7 in
  Alcotest.(check string) "data-only name = RID" "rid:3.7"
    (Lockmgr.name_to_string (Protocol.key_name Protocol.Data_only 5 key));
  Alcotest.(check bool) "index-specific name carries value AND rid" true
    (let n = Lockmgr.name_to_string (Protocol.key_name Protocol.Index_specific 5 key) in
     String.length n > 8);
  Alcotest.(check string) "KVL name = value only" "kv:5:\"val\""
    (Lockmgr.name_to_string (Protocol.key_name Protocol.Kvl 5 key));
  Alcotest.(check string) "EOF name" "eof:5" (Lockmgr.name_to_string (Protocol.target_name Protocol.Kvl 5 Protocol.Eof))

let () =
  Alcotest.run "ixlog"
    [
      ( "codec",
        [
          Alcotest.test_case "all opcodes roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "opcodes distinct" `Quick test_op_names_distinct;
          QCheck_alcotest.to_alcotest qcheck_codec;
        ] );
      ( "apply",
        [
          Alcotest.test_case "SMO undo bodies are inverses" `Quick test_smo_undo_inverse;
          Alcotest.test_case "unlink inverse" `Quick test_empty_leaf_unlink_inverse;
          Alcotest.test_case "shape mismatches detected" `Quick test_apply_shape_mismatch_detected;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "Figure 2 lock tables" `Quick test_figure2_tables;
          Alcotest.test_case "lock names by protocol" `Quick test_lock_names_by_protocol;
        ] );
    ]
