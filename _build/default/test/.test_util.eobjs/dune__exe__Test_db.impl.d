test/test_db.ml: Alcotest Aries_btree Aries_buffer Aries_db Aries_lock Aries_recovery Aries_sched Aries_txn Aries_util Aries_wal Array Filename Fun Ids List Printf Stats String Sys
