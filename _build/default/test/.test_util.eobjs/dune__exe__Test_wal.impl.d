test/test_wal.ml: Alcotest Aries_util Aries_wal Bytes List QCheck QCheck_alcotest Stats
