test/test_buffer.ml: Alcotest Aries_buffer Aries_page Aries_util Aries_wal Bytes List Stats
