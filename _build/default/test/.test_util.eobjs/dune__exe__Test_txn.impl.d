test/test_txn.ml: Alcotest Aries_lock Aries_recovery Aries_sched Aries_txn Aries_util Aries_wal Bytebuf Hashtbl Ids List
