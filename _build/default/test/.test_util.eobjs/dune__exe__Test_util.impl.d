test/test_util.ml: Alcotest Aries_util Array Bytebuf Bytes Fun List QCheck QCheck_alcotest Rng Stats String Vec
