test/test_scenarios.ml: Alcotest Aries_btree Aries_buffer Aries_db Aries_lock Aries_page Aries_sched Aries_txn Aries_util Aries_wal Ids List Printf Stats String
