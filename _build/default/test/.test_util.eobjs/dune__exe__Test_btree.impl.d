test/test_btree.ml: Alcotest Aries_btree Aries_db Aries_page Aries_txn Aries_util Ids List Map Printf QCheck QCheck_alcotest Rng String
