test/test_page.ml: Alcotest Aries_page Aries_util Bytebuf Bytes Ids List QCheck QCheck_alcotest Vec
