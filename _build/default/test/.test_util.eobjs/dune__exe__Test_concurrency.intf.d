test/test_concurrency.mli:
