test/test_concurrency.ml: Alcotest Aries_btree Aries_buffer Aries_db Aries_lock Aries_page Aries_sched Aries_txn Aries_util Array Hashtbl Ids List Printexc Printf QCheck QCheck_alcotest Rng String
