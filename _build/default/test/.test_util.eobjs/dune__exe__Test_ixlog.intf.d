test/test_ixlog.mli:
