test/test_sched.ml: Alcotest Aries_sched List
