test/test_lock.ml: Alcotest Aries_lock Aries_sched Aries_util Array Ids List Printf
