test/test_ixlog.ml: Alcotest Aries_btree Aries_lock Aries_page Aries_util Bytes Ids List Printf QCheck QCheck_alcotest String Vec
