(* Cooperative scheduler and latches: interleaving, suspension, wakers,
   condition variables, latch compatibility/fairness, step-budget crashes. *)

module Sched = Aries_sched.Sched
module Latch = Aries_sched.Latch

let test_run_value () =
  Alcotest.(check int) "value" 42 (Sched.run_value (fun () -> 42))

let test_fifo_interleaving () =
  let log = ref [] in
  let r =
    Sched.run (fun () ->
        ignore
          (Sched.spawn (fun () ->
               log := "a1" :: !log;
               Sched.yield ();
               log := "a2" :: !log));
        ignore
          (Sched.spawn (fun () ->
               log := "b1" :: !log;
               Sched.yield ();
               log := "b2" :: !log)))
  in
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check (list string)) "round robin" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_random_policy_deterministic () =
  let trace seed =
    let log = ref [] in
    ignore
      (Sched.run ~policy:(Sched.Random seed) (fun () ->
           for i = 1 to 5 do
             ignore
               (Sched.spawn (fun () ->
                    log := (2 * i) :: !log;
                    Sched.yield ();
                    log := ((2 * i) + 1) :: !log))
           done));
    !log
  in
  Alcotest.(check bool) "same seed, same schedule" true (trace 9 = trace 9);
  Alcotest.(check bool) "different seeds differ" true (trace 9 <> trace 10)

let test_suspend_wake () =
  let woken = ref false in
  let saved = ref None in
  let r =
    Sched.run (fun () ->
        ignore
          (Sched.spawn (fun () ->
               Sched.suspend (fun w -> saved := Some w);
               woken := true));
        ignore
          (Sched.spawn (fun () ->
               match !saved with Some w -> Sched.wake w | None -> Alcotest.fail "no waker")))
  in
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check bool) "woken" true !woken

let test_abort_raises_at_suspension () =
  let got = ref "" in
  ignore
    (Sched.run (fun () ->
         let saved = ref None in
         ignore
           (Sched.spawn (fun () ->
                try Sched.suspend (fun w -> saved := Some w)
                with Sched.Killed msg -> got := msg));
         ignore
           (Sched.spawn (fun () ->
                match !saved with
                | Some w -> Sched.abort w (Sched.Killed "die")
                | None -> Alcotest.fail "no waker"))));
  Alcotest.(check string) "exception delivered" "die" !got

let test_double_wake_ignored () =
  let count = ref 0 in
  let r =
    Sched.run (fun () ->
        let saved = ref None in
        ignore
          (Sched.spawn (fun () ->
               Sched.suspend (fun w -> saved := Some w);
               incr count));
        ignore
          (Sched.spawn (fun () ->
               match !saved with
               | Some w ->
                   Sched.wake w;
                   Sched.wake w;
                   Sched.abort w (Sched.Killed "late")
               | None -> ())))
  in
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check int) "resumed once" 1 !count

let test_stall_detection () =
  let r = Sched.run (fun () -> Sched.suspend (fun _w -> ())) in
  match r.Sched.outcome with
  | Sched.Stalled [ _ ] -> ()
  | _ -> Alcotest.fail "expected stall with one suspended fiber"

let test_step_budget () =
  let r =
    Sched.run ~max_steps:5 (fun () ->
        while true do
          Sched.yield ()
        done)
  in
  match r.Sched.outcome with
  | Sched.Interrupted live -> Alcotest.(check int) "one live fiber" 1 live
  | _ -> Alcotest.fail "expected interruption"

let test_fiber_exn_recorded () =
  let r = Sched.run (fun () -> failwith "boom") in
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check int) "one exn" 1 (List.length r.Sched.exns)

(* ---------- condition variables ---------- *)

let test_condvar () =
  let cv = Sched.Condvar.create "cv" in
  let order = ref [] in
  let r =
    Sched.run (fun () ->
        for i = 1 to 3 do
          ignore
            (Sched.spawn (fun () ->
                 Sched.Condvar.wait cv;
                 order := i :: !order))
        done;
        ignore
          (Sched.spawn (fun () ->
               Sched.yield ();
               Alcotest.(check int) "three waiters" 3 (Sched.Condvar.waiters cv);
               Sched.Condvar.signal cv;
               Sched.yield ();
               Alcotest.(check int) "two waiters" 2 (Sched.Condvar.waiters cv);
               Sched.Condvar.broadcast cv)))
  in
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check int) "all woken" 3 (List.length !order)

(* ---------- latches ---------- *)

let test_latch_s_sharing () =
  Sched.run_value (fun () ->
      let l = Latch.create "l" in
      Latch.acquire l Latch.S;
      Alcotest.(check bool) "second S conditional ok from other fiber" true
        (let ok = ref false in
         ignore (Sched.spawn (fun () -> ok := Latch.try_acquire l Latch.S));
         Sched.yield ();
         !ok))

let test_latch_x_excludes () =
  Sched.run_value (fun () ->
      let l = Latch.create "l" in
      Latch.acquire l Latch.X;
      let denied = ref false in
      ignore (Sched.spawn (fun () -> denied := not (Latch.try_acquire l Latch.S)));
      Sched.yield ();
      Alcotest.(check bool) "S denied under X" true !denied)

let test_latch_blocking_handoff () =
  let order = ref [] in
  let r =
    Sched.run (fun () ->
        let l = Latch.create "l" in
        ignore
          (Sched.spawn (fun () ->
               Latch.acquire l Latch.X;
               order := "a-got" :: !order;
               Sched.yield ();
               Latch.release l;
               order := "a-rel" :: !order));
        ignore
          (Sched.spawn (fun () ->
               Latch.acquire l Latch.X;
               order := "b-got" :: !order;
               Latch.release l)))
  in
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check (list string)) "handoff order" [ "a-got"; "a-rel"; "b-got" ] (List.rev !order)

let test_latch_fifo_no_barging () =
  (* S holder; X waiter queued; a later conditional S from a third fiber
     must fail (no barging past the queue) *)
  Sched.run_value (fun () ->
      let l = Latch.create "l" in
      Latch.acquire l Latch.S;
      ignore
        (Sched.spawn (fun () ->
             Latch.acquire l Latch.X;
             Latch.release l));
      Sched.yield ();
      let barged = ref true in
      ignore (Sched.spawn (fun () -> barged := Latch.try_acquire l Latch.S));
      Sched.yield ();
      Alcotest.(check bool) "conditional S fails behind X waiter" false !barged;
      Latch.release l)

let test_latch_reentry_rejected () =
  Sched.run_value (fun () ->
      let l = Latch.create "l" in
      Latch.acquire l Latch.S;
      Alcotest.(check bool) "re-entry raises" true
        (match Latch.acquire l Latch.S with
        | () -> false
        | exception Invalid_argument _ -> true))

let test_latch_s_batch_grant () =
  (* X holder releases: all queued S waiters are granted together *)
  let got = ref 0 in
  let r =
    Sched.run (fun () ->
        let l = Latch.create "l" in
        Latch.acquire l Latch.X;
        for _ = 1 to 3 do
          ignore
            (Sched.spawn (fun () ->
                 Latch.acquire l Latch.S;
                 incr got))
        done;
        Sched.yield ();
        Latch.release l;
        Sched.yield ();
        Alcotest.(check int) "all S granted" 3 !got;
        Alcotest.(check int) "three holders" 3 (Latch.holder_count l))
  in
  Alcotest.(check bool) "no stall" true (r.Sched.outcome = Sched.Completed)

let () =
  Alcotest.run "sched"
    [
      ( "fibers",
        [
          Alcotest.test_case "run_value" `Quick test_run_value;
          Alcotest.test_case "fifo interleaving" `Quick test_fifo_interleaving;
          Alcotest.test_case "random policy deterministic" `Quick test_random_policy_deterministic;
          Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
          Alcotest.test_case "abort at suspension" `Quick test_abort_raises_at_suspension;
          Alcotest.test_case "double wake ignored" `Quick test_double_wake_ignored;
          Alcotest.test_case "stall detection" `Quick test_stall_detection;
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "fiber exception recorded" `Quick test_fiber_exn_recorded;
        ] );
      ("condvar", [ Alcotest.test_case "wait/signal/broadcast" `Quick test_condvar ]);
      ( "latch",
        [
          Alcotest.test_case "S sharing" `Quick test_latch_s_sharing;
          Alcotest.test_case "X excludes" `Quick test_latch_x_excludes;
          Alcotest.test_case "blocking handoff" `Quick test_latch_blocking_handoff;
          Alcotest.test_case "fifo no barging" `Quick test_latch_fifo_no_barging;
          Alcotest.test_case "re-entry rejected" `Quick test_latch_reentry_rejected;
          Alcotest.test_case "S batch grant" `Quick test_latch_s_batch_grant;
        ] );
    ]
