(* Concurrency: repeatable read / phantom protection through next-key
   locking, the unique-index uncommitted-delete guarantee, serializability
   of concurrent transactions (conservation invariant), deadlock liveness,
   rolling-back transactions never deadlocking (Q4), and readers running
   concurrently with SMOs. *)

open Aries_util
module Lockmgr = Aries_lock.Lockmgr
module Key = Aries_page.Key
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db
module Table = Aries_db.Table

let rid i = { Ids.rid_page = 900 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?(page_size = 384) ?(unique = true) () =
  let db = Db.create ~page_size () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"t" ~unique))
  in
  (db, tree)

let seed db tree lo hi =
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = lo to hi do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done))

(* ------------------------------------------------------------------ *)
(* Phantom protection: a not-found fetch locks the next key; an insert of
   the fetched value by another transaction must wait until the reader
   commits (§2.2). *)

let test_phantom_blocked () =
  let db, tree = fresh ~page_size:384 () in
  seed db tree 0 9;
  let order = ref [] in
  let r =
    Db.run db (fun () ->
        ignore
          (Sched.spawn ~name:"reader" (fun () ->
               let t1 = Txnmgr.begin_txn db.Db.mgr in
               (* not-found: locks the next key (key00005's successor... the
                  value 4x sits between 4 and 5) *)
               Alcotest.(check bool) "not found" true (Btree.fetch tree t1 "key00004x" = None);
               order := "read" :: !order;
               for _ = 1 to 8 do
                 Sched.yield ()
               done;
               (* re-fetch must still be not-found (repeatable read) *)
               Alcotest.(check bool) "repeatable" true (Btree.fetch tree t1 "key00004x" = None);
               order := "reread" :: !order;
               Txnmgr.commit db.Db.mgr t1));
        ignore
          (Sched.spawn ~name:"writer" (fun () ->
               Sched.yield ();
               Db.with_txn db (fun t2 ->
                   Btree.insert tree t2 ~value:"key00004x" ~rid:(rid 444));
               order := "insert" :: !order)))
  in
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check (list string)) "insert waited for the reader's commit"
    [ "read"; "reread"; "insert" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Unique index: an uncommitted delete of a value must block another
   transaction's insert of the same value (§2.4, problem 10). *)

let test_unique_uncommitted_delete_blocks_insert () =
  let db, tree = fresh () in
  seed db tree 0 9;
  let outcome = ref `None in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn ~name:"deleter" (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                Btree.delete tree t1 ~value:(v 5) ~rid:(rid 5);
                for _ = 1 to 8 do
                  Sched.yield ()
                done;
                (* the deleter rolls back: the value exists again *)
                Txnmgr.rollback db.Db.mgr t1));
         ignore
           (Sched.spawn ~name:"inserter" (fun () ->
                Sched.yield ();
                let t2 = Txnmgr.begin_txn db.Db.mgr in
                (match Btree.insert tree t2 ~value:(v 5) ~rid:(rid 555) with
                | () -> outcome := `Inserted
                | exception Btree.Unique_violation _ -> outcome := `Violation);
                Txnmgr.commit db.Db.mgr t2))));
  (* T2 had to wait for T1; T1 rolled back, so the value is present and the
     insert reports a unique violation — never a double insert *)
  Alcotest.(check bool) "violation after rollback" true (!outcome = `Violation);
  Btree.check_invariants tree;
  Alcotest.(check int) "exactly one key 5" 1
    (List.length (List.filter (fun (value, _) -> value = v 5) (Btree.to_list tree)))

let test_unique_committed_delete_allows_insert () =
  let db, tree = fresh () in
  seed db tree 0 9;
  let outcome = ref `None in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn ~name:"deleter" (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                Btree.delete tree t1 ~value:(v 5) ~rid:(rid 5);
                for _ = 1 to 8 do
                  Sched.yield ()
                done;
                Txnmgr.commit db.Db.mgr t1));
         ignore
           (Sched.spawn ~name:"inserter" (fun () ->
                Sched.yield ();
                let t2 = Txnmgr.begin_txn db.Db.mgr in
                (match Btree.insert tree t2 ~value:(v 5) ~rid:(rid 555) with
                | () -> outcome := `Inserted
                | exception Btree.Unique_violation _ -> outcome := `Violation);
                Txnmgr.commit db.Db.mgr t2))));
  Alcotest.(check bool) "insert succeeds after committed delete" true (!outcome = `Inserted);
  Btree.check_invariants tree

(* ------------------------------------------------------------------ *)
(* Serializability: concurrent transfers preserve the conservation
   invariant under any seeded schedule. Accounts live in a table; data-only
   locking covers both the records and the index keys. *)

let test_transfers_conserve () =
  List.iter
    (fun seed_n ->
      let db = Db.create ~page_size:512 () in
      let specs = [ { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun r -> r.(0)) } ] in
      let tbl =
        Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs))
      in
      let n_accounts = 8 in
      let initial = 100 in
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn ->
              for i = 0 to n_accounts - 1 do
                ignore
                  (Table.insert tbl txn [| Printf.sprintf "acct%d" i; string_of_int initial |])
              done));
      let rng = Rng.create seed_n in
      let aborts = ref 0 in
      let transfer txn a b amount =
        let name i = Printf.sprintf "acct%d" i in
        match (Table.fetch tbl txn ~index:"pk" (name a), Table.fetch tbl txn ~index:"pk" (name b))
        with
        | Some (rid_a, row_a), Some (rid_b, row_b) ->
            let bal_a = int_of_string row_a.(1) and bal_b = int_of_string row_b.(1) in
            Table.update tbl txn rid_a [| name a; string_of_int (bal_a - amount) |];
            Table.update tbl txn rid_b [| name b; string_of_int (bal_b + amount) |]
        | _ -> Alcotest.fail "account missing"
      in
      let r =
        Db.run db ~policy:(Sched.Random seed_n) ~yield_probability:0.2 (fun () ->
            for _f = 1 to 4 do
              ignore
                (Sched.spawn (fun () ->
                     for _ = 1 to 10 do
                       let a = Rng.int rng n_accounts in
                       let b = (a + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts in
                       let amount = Rng.int rng 20 in
                       match Db.with_txn db (fun txn -> transfer txn a b amount) with
                       | () -> ()
                       | exception Txnmgr.Aborted _ -> incr aborts
                     done))
            done)
      in
      Alcotest.(check bool) "completed (no stall)" true (r.Sched.outcome = Sched.Completed);
      Alcotest.(check (list string)) "no fiber exceptions" []
        (List.map (fun (_, _, e) -> Printexc.to_string e) r.Sched.exns);
      (* conservation *)
      let rows =
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> Table.scan tbl txn ~index:"pk" "" ()))
      in
      let total = List.fold_left (fun acc (_, row) -> acc + int_of_string row.(1)) 0 rows in
      Alcotest.(check int)
        (Printf.sprintf "conservation (seed %d, %d deadlock aborts)" seed_n !aborts)
        (n_accounts * initial) total)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Q4: rolling-back transactions never deadlock. A rolling-back txn makes
   no lock requests (asserted inside Txnmgr.lock) and is marked no-victim;
   an adversarial mix of deadlocks + rollbacks + SMOs must terminate. *)

let test_q4_rollback_never_deadlocks () =
  let db, tree = fresh ~page_size:384 () in
  seed db tree 0 99;
  let rng = Rng.create 99 in
  let deadlocks = ref 0 and completed = ref 0 and rolled_back = ref 0 in
  let r =
    Db.run db ~policy:(Sched.Random 99) ~yield_probability:0.2 (fun () ->
        for _f = 1 to 6 do
          ignore
            (Sched.spawn (fun () ->
                 for _ = 1 to 12 do
                   let t = Txnmgr.begin_txn db.Db.mgr in
                   match
                     for _ = 1 to 1 + Rng.int rng 4 do
                       let i = Rng.int rng 400 in
                       let value = v i in
                       (* take the record lock as the table layer would: this
                          creates real lock conflicts *)
                       Txnmgr.lock db.Db.mgr t (Lockmgr.Rid (rid i)) Lockmgr.X Lockmgr.Commit;
                       (try Btree.insert tree t ~value ~rid:(rid i)
                        with Btree.Unique_violation _ -> (
                          try Btree.delete tree t ~value ~rid:(rid i)
                          with Btree.Key_not_found _ -> ()))
                     done
                   with
                   | () ->
                       if Rng.int rng 3 = 0 then begin
                         Txnmgr.rollback db.Db.mgr t;
                         incr rolled_back
                       end
                       else begin
                         Txnmgr.commit db.Db.mgr t;
                         incr completed
                       end
                   | exception Txnmgr.Aborted _ -> incr deadlocks
                 done))
        done)
  in
  (* liveness: every fiber ran to completion; no stalls, no assertion about
     rolling-back txns fired inside the lock manager *)
  Alcotest.(check bool) "no stall" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check (list string)) "no fiber exceptions" []
    (List.map (fun (_, _, e) -> Printexc.to_string e) r.Sched.exns);
  Alcotest.(check int) "all transactions accounted" 72 (!completed + !rolled_back + !deadlocks);
  Btree.check_invariants tree

(* ------------------------------------------------------------------ *)
(* Readers concurrent with SMOs: scans while a writer splits and deletes
   pages; every scan result must be sorted and complete w.r.t. committed
   state boundaries. *)

let test_scans_during_smos () =
  let db, tree = fresh ~page_size:384 ~unique:false () in
  seed db tree 0 49;
  let writer_done = ref false in
  let scan_count = ref 0 in
  let r =
    Db.run db ~policy:(Sched.Random 7) ~yield_probability:0.3 (fun () ->
        ignore
          (Sched.spawn ~name:"writer" (fun () ->
               (* grow then shrink: plenty of splits and page deletes *)
               Db.with_txn db (fun txn ->
                   for i = 50 to 250 do
                     Btree.insert tree txn ~value:(v i) ~rid:(rid i)
                   done);
               Db.with_txn db (fun txn ->
                   for i = 50 to 250 do
                     Btree.delete tree txn ~value:(v i) ~rid:(rid i)
                   done);
               writer_done := true));
        for _r = 1 to 3 do
          ignore
            (Sched.spawn (fun () ->
                 while not !writer_done do
                   Db.with_txn db (fun txn ->
                       let c = Btree.open_scan tree txn ~comparison:`Ge "" in
                       let rec go prev n =
                         match Btree.fetch_next tree txn c () with
                         | Some k ->
                             (match prev with
                             | Some p ->
                                 if String.compare p k.Key.value > 0 then
                                   Alcotest.failf "scan out of order: %s then %s" p k.Key.value
                             | None -> ());
                             go (Some k.Key.value) (n + 1)
                         | None -> n
                       in
                       let n = go None 0 in
                       Alcotest.(check bool) "at least the base keys" true (n >= 50));
                   incr scan_count;
                   Sched.yield ()
                 done))
        done)
  in
  Alcotest.(check bool) "no stall" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check (list string)) "no fiber exceptions" []
    (List.map (fun (_, _, e) -> Printexc.to_string e) r.Sched.exns);
  Alcotest.(check bool) "scans actually ran during writes" true (!scan_count > 0);
  Btree.check_invariants tree

(* ------------------------------------------------------------------ *)
(* Randomized multi-fiber stress on disjoint key ranges with commits and
   rollbacks; the final tree must equal the oracle. *)

let stress_prop seed_n =
  let db, tree = fresh ~page_size:320 ~unique:false () in
  let oracle : (string, Ids.rid) Hashtbl.t = Hashtbl.create 128 in
  let fibers = 4 in
  let r =
    Db.run db ~policy:(Sched.Random seed_n) ~yield_probability:0.25 (fun () ->
        for f = 0 to fibers - 1 do
          let rng = Rng.create ((seed_n * 17) + f) in
          ignore
            (Sched.spawn (fun () ->
                 for _ = 1 to 20 do
                   let t = Txnmgr.begin_txn db.Db.mgr in
                   let local = ref [] in
                   match
                     for _ = 1 to 1 + Rng.int rng 4 do
                       (* keys private to this fiber: the oracle stays exact
                          (next-key LOCKS may still cross ranges, so
                          deadlock aborts are possible and count as
                          rollbacks) *)
                       let i = (f * 1000) + Rng.int rng 80 in
                       let value = v i in
                       let mine = List.mem_assoc value !local in
                       let exists = Hashtbl.mem oracle value || mine in
                       if not exists then begin
                         Btree.insert tree t ~value ~rid:(rid i);
                         local := (value, `Ins (rid i)) :: !local
                       end
                       else if Hashtbl.mem oracle value && not mine then begin
                         Btree.delete tree t ~value ~rid:(Hashtbl.find oracle value);
                         local := (value, `Del) :: !local
                       end
                     done
                   with
                   | exception Txnmgr.Aborted _ -> () (* deadlock victim: rolled back *)
                   | () ->
                       if Rng.bool rng then begin
                         Txnmgr.commit db.Db.mgr t;
                         List.iter
                           (fun (value, op) ->
                             match op with
                             | `Ins r -> Hashtbl.replace oracle value r
                             | `Del -> Hashtbl.remove oracle value)
                           (List.rev !local)
                       end
                       else Txnmgr.rollback db.Db.mgr t
                 done))
        done)
  in
  r.Sched.outcome = Sched.Completed
  && r.Sched.exns = []
  &&
  (Btree.check_invariants tree;
   let actual = List.map fst (Btree.to_list tree) in
   let expected = Hashtbl.fold (fun k _ acc -> k :: acc) oracle [] |> List.sort compare in
   actual = expected)

let qcheck_stress =
  QCheck.Test.make ~name:"random schedules: tree equals oracle after commits+rollbacks" ~count:15
    QCheck.small_int stress_prop

(* ------------------------------------------------------------------ *)
(* Baseline protocols behave as documented: under KVL two transactions may
   insert duplicates of the same value concurrently (IX-IX on the value is
   compatible); under System R-style locking the second insert waits for
   the first to commit (X commit on the value). *)

let dup_insert_overlap locking =
  let config = { Btree.default_config with Btree.locking } in
  let db = Db.create ~page_size:512 ~config () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create ~config db.Db.benv txn ~name:"t" ~unique:false))
  in
  seed db tree 0 9;
  let t1_committed = ref false and t2_done_before_t1_commit = ref false in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn ~name:"T1" (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                Btree.insert tree t1 ~value:(v 5) ~rid:(rid 501);
                for _ = 1 to 8 do
                  Sched.yield ()
                done;
                Txnmgr.commit db.Db.mgr t1;
                t1_committed := true));
         ignore
           (Sched.spawn ~name:"T2" (fun () ->
                Sched.yield ();
                Db.with_txn db (fun t2 -> Btree.insert tree t2 ~value:(v 5) ~rid:(rid 502));
                t2_done_before_t1_commit := not !t1_committed))));
  Btree.check_invariants tree;
  !t2_done_before_t1_commit

let test_kvl_duplicate_inserts_concurrent () =
  Alcotest.(check bool) "KVL: IX-IX lets duplicate inserters overlap" true
    (dup_insert_overlap Protocol.Kvl);
  Alcotest.(check bool) "System R: X commit serializes duplicate inserters" false
    (dup_insert_overlap Protocol.System_r);
  Alcotest.(check bool) "ARIES/IM: key locks never collide on duplicates" true
    (dup_insert_overlap Protocol.Data_only)

(* ------------------------------------------------------------------ *)
(* Conflict-serializability: record every data access of every committed
   transaction in wall order; the precedence graph (Ti -> Tj when Ti's
   access conflicts with a later access by Tj) must be acyclic. Strict 2PL
   with next-key locking must pass this for any seeded schedule. *)

type access = { ac_txn : int; ac_item : string; ac_write : bool }

let conflict_serializable (log : access list) (committed : int list) =
  let log = List.filter (fun a -> List.mem a.ac_txn committed) log in
  (* build edges *)
  let edges = Hashtbl.create 64 in
  let rec scan = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            if
              a.ac_txn <> b.ac_txn
              && String.equal a.ac_item b.ac_item
              && (a.ac_write || b.ac_write)
            then Hashtbl.replace edges (a.ac_txn, b.ac_txn) ())
          rest;
        scan rest
  in
  scan log;
  (* cycle check over the committed txn ids *)
  let succs x =
    Hashtbl.fold (fun (a, b) () acc -> if a = x then b :: acc else acc) edges []
  in
  let color = Hashtbl.create 16 in
  let rec dfs x =
    match Hashtbl.find_opt color x with
    | Some `Done -> true
    | Some `Active -> false (* cycle *)
    | None ->
        Hashtbl.replace color x `Active;
        let ok = List.for_all dfs (succs x) in
        Hashtbl.replace color x `Done;
        ok
  in
  List.for_all dfs committed

let serializability_prop seed_n =
  let db = Db.create ~page_size:512 () in
  let specs = [ { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun r -> r.(0)) } ] in
  let tbl =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs))
  in
  let items = 10 in
  let item i = Printf.sprintf "item%02d" i in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to items - 1 do
            ignore (Table.insert tbl txn [| item i; "0" |])
          done));
  let accesses = ref [] and committed = ref [] in
  let record a = accesses := a :: !accesses in
  ignore
    (Db.run db ~policy:(Sched.Random seed_n) ~yield_probability:0.25 (fun () ->
         for f = 0 to 3 do
           let rng = Rng.create ((seed_n * 13) + f) in
           ignore
             (Sched.spawn (fun () ->
                  for _ = 1 to 8 do
                    let t = Txnmgr.begin_txn db.Db.mgr in
                    match
                      for _ = 1 to 1 + Rng.int rng 3 do
                        let i = Rng.int rng items in
                        match Table.fetch tbl t ~index:"pk" (item i) with
                        | Some (rid, row) ->
                            record { ac_txn = t.Txnmgr.txn_id; ac_item = item i; ac_write = false };
                            if Rng.bool rng then begin
                              let bal = int_of_string row.(1) in
                              Table.update tbl t rid [| item i; string_of_int (bal + 1) |];
                              record
                                { ac_txn = t.Txnmgr.txn_id; ac_item = item i; ac_write = true }
                            end
                        | None -> Alcotest.fail "item missing"
                      done
                    with
                    | () ->
                        Txnmgr.commit db.Db.mgr t;
                        committed := t.Txnmgr.txn_id :: !committed
                    | exception Txnmgr.Aborted _ -> ()
                  done))
         done));
  Table.check_consistency tbl;
  conflict_serializable (List.rev !accesses) !committed

let qcheck_serializability =
  QCheck.Test.make ~name:"committed transactions are conflict-serializable" ~count:20
    QCheck.small_int serializability_prop

(* ------------------------------------------------------------------ *)
(* Cursor stability (degree 2, §1.2): current-key locks live only while
   the cursor is positioned; RR's guarantees are deliberately weakened to
   non-repeatable (but never dirty) reads. *)

let cs_rr_schedule isolation =
  let db, tree = fresh () in
  seed db tree 0 9;
  let first = ref None and second = ref None in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn ~name:"reader" (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                first := Btree.fetch tree t1 ~isolation (v 5);
                for _ = 1 to 6 do
                  Sched.yield ()
                done;
                second := Btree.fetch tree t1 ~isolation (v 5);
                Txnmgr.commit db.Db.mgr t1));
         ignore
           (Sched.spawn ~name:"deleter" (fun () ->
                Sched.yield ();
                Db.with_txn db (fun t2 ->
                    (* as the table layer would: the record lock comes first
                       and is the index key lock under data-only locking *)
                    Txnmgr.lock db.Db.mgr t2 (Lockmgr.Rid (rid 5)) Lockmgr.X Lockmgr.Commit;
                    Btree.delete tree t2 ~value:(v 5) ~rid:(rid 5))))));
  (!first <> None, !second <> None)

let test_cs_non_repeatable_read () =
  (* the SAME schedule differs only in isolation level *)
  let f, s = cs_rr_schedule `Rr in
  Alcotest.(check (pair bool bool)) "RR: both reads see the key (deleter blocked)" (true, true)
    (f, s);
  let f, s = cs_rr_schedule `Cs in
  Alcotest.(check (pair bool bool)) "CS: the re-read is non-repeatable" (true, false) (f, s)

let test_cs_no_dirty_read () =
  let db, tree = fresh () in
  seed db tree 0 9;
  let seen = ref None in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn ~name:"deleter" (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                Btree.delete tree t1 ~value:(v 5) ~rid:(rid 5);
                for _ = 1 to 8 do
                  Sched.yield ()
                done;
                (* rollback: the delete never happened *)
                Txnmgr.rollback db.Db.mgr t1));
         ignore
           (Sched.spawn ~name:"cs-reader" (fun () ->
                Sched.yield ();
                Db.with_txn db (fun t2 -> seen := Btree.fetch tree t2 ~isolation:`Cs (v 5))))));
  (* the CS reader had to wait for the uncommitted delete to resolve, and
     then saw the restored (committed) key — never the dirty absence *)
  Alcotest.(check bool) "CS sees only committed state" true
    (match !seen with Some k -> String.equal k.Key.value (v 5) | None -> false)

let test_cs_scan_holds_few_locks () =
  let db, tree = fresh () in
  seed db tree 0 99;
  let peak_rr = ref 0 and peak_cs = ref 0 in
  let run_scan isolation peak =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn ->
            let c = Btree.open_scan tree txn ~isolation "" in
            let rec go () =
              match Btree.fetch_next tree txn c () with
              | Some _ ->
                  let held =
                    Aries_lock.Lockmgr.held_count db.Db.locks ~txn:txn.Txnmgr.txn_id
                  in
                  if held > !peak then peak := held;
                  go ()
              | None -> ()
            in
            go ()))
  in
  run_scan `Rr peak_rr;
  run_scan `Cs peak_cs;
  Alcotest.(check bool) "RR scan accumulates commit-duration locks" true (!peak_rr >= 100);
  Alcotest.(check bool) "CS scan holds O(1) locks" true (!peak_cs <= 2)

(* ------------------------------------------------------------------ *)
(* The §5 extension: concurrent SMOs via the tree lock. *)

let smos_cfg = { Btree.default_config with Btree.concurrent_smos = true }

let fresh_smos ?(page_size = 384) ?(unique = true) () =
  let db = Db.create ~page_size ~config:smos_cfg () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn ->
            Btree.create ~config:smos_cfg db.Db.benv txn ~name:"t" ~unique))
  in
  (db, tree)

(* two leaf-level splits of different leaves must be in flight at the same
   time under IX; under the default latch they serialize *)
let smo_overlap ~concurrent =
  (* roomy pages so the leaf splits stay leaf-level (parents have space and
     the IX path is taken in concurrent mode) *)
  let db, tree =
    if concurrent then fresh_smos ~page_size:1024 () else fresh ~page_size:1024 ()
  in
  seed db tree 0 199;
  (* two far-apart leaves, each filled to the brink by committed work *)
  let fill base =
    let free_of pid =
      Aries_buffer.Bufpool.with_fix db.Db.pool pid (fun p -> Aries_page.Page.free_space p)
    in
    let j = ref 0 in
    while free_of (Btree.locate_leaf tree base) >= String.length base + 13 do
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn ->
              Btree.insert tree txn
                ~value:(Printf.sprintf "%sf%02d" base !j)
                ~rid:(rid (300 + !j))));
      incr j
    done
  in
  fill "key00020";
  fill "key00150";
  let in_pause = ref 0 and max_in_pause = ref 0 in
  Btree.set_smo_pause db.Db.benv
    (Some
       (fun () ->
         incr in_pause;
         if !in_pause > !max_in_pause then max_in_pause := !in_pause;
         for _ = 1 to 16 do
           Sched.yield ()
         done;
         decr in_pause));
  let r =
    Db.run db (fun () ->
        ignore
          (Sched.spawn (fun () ->
               Db.with_txn db (fun txn ->
                   Btree.insert tree txn ~value:"key00020f99" ~rid:(rid 801))));
        ignore
          (Sched.spawn (fun () ->
               Db.with_txn db (fun txn ->
                   Btree.insert tree txn ~value:"key00150f99" ~rid:(rid 802)))))
  in
  Btree.set_smo_pause db.Db.benv None;
  Alcotest.(check bool) "completed" true (r.Sched.outcome = Sched.Completed);
  Alcotest.(check (list string)) "no exceptions" []
    (List.map (fun (_, _, e) -> Printexc.to_string e) r.Sched.exns);
  Btree.check_invariants tree;
  !max_in_pause

let test_concurrent_smos_overlap () =
  Alcotest.(check int) "serialized: SMOs never overlap" 1 (smo_overlap ~concurrent:false);
  Alcotest.(check int) "concurrent: two SMOs in flight at once" 2 (smo_overlap ~concurrent:true)

let test_concurrent_smos_stress () =
  (* heavy split/page-delete traffic under the tree lock; everything must
     terminate, the oracle must match, invariants must hold *)
  List.iter
    (fun seed_n ->
      let db, tree = fresh_smos ~page_size:320 ~unique:false () in
      let oracle : (string, unit) Hashtbl.t = Hashtbl.create 128 in
      let r =
        Db.run db ~policy:(Sched.Random seed_n) ~yield_probability:0.3 (fun () ->
            for f = 0 to 3 do
              let rng = Rng.create ((seed_n * 31) + f) in
              ignore
                (Sched.spawn (fun () ->
                     for _ = 1 to 15 do
                       let t = Txnmgr.begin_txn db.Db.mgr in
                       let local = ref [] in
                       match
                         for _ = 1 to 1 + Rng.int rng 5 do
                           let i = (f * 1000) + Rng.int rng 120 in
                           let value = v i in
                           let mine = List.mem_assoc value !local in
                           if (not mine) && not (Hashtbl.mem oracle value) then begin
                             Btree.insert tree t ~value ~rid:(rid i);
                             local := (value, `Ins) :: !local
                           end
                           else if (not mine) && Hashtbl.mem oracle value then begin
                             Btree.delete tree t ~value ~rid:(rid i);
                             local := (value, `Del) :: !local
                           end
                         done
                       with
                       | exception Txnmgr.Aborted _ -> ()
                       | () ->
                           if Rng.int rng 4 = 0 then Txnmgr.rollback db.Db.mgr t
                           else begin
                             Txnmgr.commit db.Db.mgr t;
                             List.iter
                               (fun (value, op) ->
                                 match op with
                                 | `Ins -> Hashtbl.replace oracle value ()
                                 | `Del -> Hashtbl.remove oracle value)
                               (List.rev !local)
                           end
                     done))
            done)
      in
      Alcotest.(check bool)
        (Printf.sprintf "completed (seed %d)" seed_n)
        true
        (r.Sched.outcome = Sched.Completed);
      Alcotest.(check (list string)) "no fiber exceptions" []
        (List.map (fun (_, _, e) -> Printexc.to_string e) r.Sched.exns);
      Btree.check_invariants tree;
      let actual = List.map fst (Btree.to_list tree) in
      let expected = Hashtbl.fold (fun k () acc -> k :: acc) oracle [] |> List.sort compare in
      Alcotest.(check bool)
        (Printf.sprintf "oracle matches (seed %d)" seed_n)
        true (actual = expected))
    [ 3; 14; 15 ]

let test_concurrent_smos_crash_recovery () =
  (* crash in the middle of concurrent-SMO traffic; restart must recover
     exactly the committed state *)
  let db, tree = fresh_smos ~page_size:320 () in
  seed db tree 0 59;
  let committed : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to 59 do
    Hashtbl.replace committed (v i) ()
  done;
  ignore
    (Db.run db ~policy:(Sched.Random 21) ~yield_probability:0.3 ~max_steps:1500 (fun () ->
         for f = 0 to 2 do
           let rng = Rng.create (77 + f) in
           ignore
             (Sched.spawn (fun () ->
                  let n = ref 0 in
                  while true do
                    incr n;
                    let t = Txnmgr.begin_txn db.Db.mgr in
                    let i = 100 + (f * 1000) + Rng.int rng 200 in
                    (match Btree.insert tree t ~value:(v i) ~rid:(rid i) with
                    | () ->
                        Txnmgr.commit db.Db.mgr t;
                        Hashtbl.replace committed (v i) ()
                    | exception Btree.Unique_violation _ -> Txnmgr.rollback db.Db.mgr t
                    | exception Txnmgr.Aborted _ -> ());
                    Sched.yield ()
                  done))
         done));
  let db' = Db.crash ~config:smos_cfg db in
  ignore (Db.run_exn db' (fun () -> Db.restart db'));
  let tree' = Btree.open_existing ~config:smos_cfg db'.Db.benv (Btree.index_id tree) in
  Btree.check_invariants tree';
  let actual = List.map fst (Btree.to_list tree') in
  let expected = Hashtbl.fold (fun k () acc -> k :: acc) committed [] |> List.sort compare in
  Alcotest.(check bool) "exactly the committed state" true (actual = expected)

let () =
  Alcotest.run "concurrency"
    [
      ( "isolation",
        [
          Alcotest.test_case "phantom protection (RR)" `Quick test_phantom_blocked;
          Alcotest.test_case "unique: uncommitted delete blocks insert" `Quick
            test_unique_uncommitted_delete_blocks_insert;
          Alcotest.test_case "unique: committed delete allows insert" `Quick
            test_unique_committed_delete_allows_insert;
          Alcotest.test_case "transfers conserve (serializability)" `Quick test_transfers_conserve;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "Q4: rollbacks never deadlock" `Quick test_q4_rollback_never_deadlocks;
          Alcotest.test_case "scans during SMOs" `Quick test_scans_during_smos;
        ] );
      ( "stress",
        [
          QCheck_alcotest.to_alcotest qcheck_stress;
          QCheck_alcotest.to_alcotest qcheck_serializability;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "KVL vs System R duplicate inserts" `Quick
            test_kvl_duplicate_inserts_concurrent;
        ] );
      ( "cursor-stability",
        [
          Alcotest.test_case "non-repeatable read allowed" `Quick test_cs_non_repeatable_read;
          Alcotest.test_case "no dirty read" `Quick test_cs_no_dirty_read;
          Alcotest.test_case "scan holds O(1) locks" `Quick test_cs_scan_holds_few_locks;
        ] );
      ( "concurrent-smos",
        [
          Alcotest.test_case "two SMOs overlap under IX" `Quick test_concurrent_smos_overlap;
          Alcotest.test_case "stress with oracle" `Quick test_concurrent_smos_stress;
          Alcotest.test_case "crash recovery" `Quick test_concurrent_smos_crash_recovery;
        ] );
    ]
