(* Lock manager: compatibility and conversion lattices, durations,
   conditional requests, FIFO fairness with conversion priority, waits-for
   deadlock detection with youngest-victim, instant-duration semantics. *)

open Aries_util
module Sched = Aries_sched.Sched
module L = Aries_lock.Lockmgr

let name_a = L.Table 1

let name_b = L.Table 2

let rid i = L.Rid { Ids.rid_page = 1; rid_slot = i }

let test_compat_matrix () =
  let modes = [ L.IS; L.IX; L.S; L.SIX; L.X ] in
  let expected a b =
    match (a, b) with
    | L.IS, L.X | L.X, L.IS -> false
    | L.IS, _ | _, L.IS -> true
    | L.IX, L.IX -> true
    | L.S, L.S -> true
    | _ -> false
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "compat %s %s" (L.mode_to_string a) (L.mode_to_string b))
            (expected a b) (L.compatible a b))
        modes)
    modes

let test_supremum_lattice () =
  Alcotest.(check bool) "S+IX=SIX" true (L.supremum L.S L.IX = L.SIX);
  Alcotest.(check bool) "IS+S=S" true (L.supremum L.IS L.S = L.S);
  Alcotest.(check bool) "X absorbs" true (L.supremum L.X L.IS = L.X);
  Alcotest.(check bool) "commutative" true (L.supremum L.IX L.S = L.supremum L.S L.IX);
  List.iter
    (fun m -> Alcotest.(check bool) "idempotent" true (L.supremum m m = m))
    [ L.IS; L.IX; L.S; L.SIX; L.X ]

let test_grant_and_conflict () =
  Sched.run_value (fun () ->
      let t = L.create () in
      Alcotest.(check bool) "first S granted" true (L.lock t ~txn:1 name_a L.S L.Commit = L.Granted);
      Alcotest.(check bool) "second S granted" true (L.lock t ~txn:2 name_a L.S L.Commit = L.Granted);
      Alcotest.(check bool) "conditional X denied" true
        (L.lock t ~txn:3 ~cond:true name_a L.X L.Commit = L.Denied);
      Alcotest.(check int) "two holders" 2 (List.length (L.holders t name_a)))

let test_blocking_grant_on_release () =
  let got = ref false in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         ignore (L.lock t ~txn:1 name_a L.X L.Commit);
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:2 name_a L.S L.Commit);
                got := true));
         Sched.yield ();
         Alcotest.(check bool) "still waiting" false !got;
         L.release_all t ~txn:1;
         Sched.yield ();
         Alcotest.(check bool) "granted after release" true !got))

let test_instant_leaves_nothing () =
  Sched.run_value (fun () ->
      let t = L.create () in
      Alcotest.(check bool) "instant X granted" true
        (L.lock t ~txn:1 name_a L.X L.Instant = L.Granted);
      Alcotest.(check bool) "no holder retained" true (L.holders t name_a = []);
      Alcotest.(check bool) "other txn can take X now" true
        (L.lock t ~txn:2 name_a L.X L.Commit = L.Granted))

let test_instant_waits_for_conflict () =
  (* an instant lock is still a serialization touch-point: it must wait *)
  let order = ref [] in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         ignore (L.lock t ~txn:1 name_a L.X L.Commit);
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:2 name_a L.X L.Instant);
                order := "instant-granted" :: !order));
         Sched.yield ();
         order := "releasing" :: !order;
         L.release_all t ~txn:1));
  Alcotest.(check (list string)) "waited for release" [ "releasing"; "instant-granted" ]
    (List.rev !order)

let test_conversion_upgrade () =
  Sched.run_value (fun () ->
      let t = L.create () in
      ignore (L.lock t ~txn:1 name_a L.S L.Commit);
      ignore (L.lock t ~txn:1 name_a L.IX L.Commit);
      Alcotest.(check bool) "held mode is supremum SIX" true
        (L.holds t ~txn:1 name_a = Some L.SIX))

let test_conversion_priority () =
  (* holder converting S->X jumps ahead of a queued fresh waiter *)
  let order = ref [] in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         ignore (L.lock t ~txn:1 name_a L.S L.Commit);
         ignore (L.lock t ~txn:2 name_a L.S L.Commit);
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:3 name_a L.X L.Commit);
                order := "fresh" :: !order;
                L.release_all t ~txn:3));
         Sched.yield ();
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:2 name_a L.X L.Commit);
                order := "convert" :: !order;
                L.release_all t ~txn:2));
         Sched.yield ();
         L.release_all t ~txn:1));
  Alcotest.(check (list string)) "conversion first" [ "convert"; "fresh" ] (List.rev !order)

let test_fifo_no_barging () =
  Sched.run_value (fun () ->
      let t = L.create () in
      ignore (L.lock t ~txn:1 name_a L.S L.Commit);
      ignore (Sched.spawn (fun () -> ignore (L.lock t ~txn:2 name_a L.X L.Commit)));
      Sched.yield ();
      (* S is compatible with the holder but must queue behind the X waiter *)
      Alcotest.(check bool) "conditional S denied behind X waiter" true
        (L.lock t ~txn:3 ~cond:true name_a L.S L.Commit = L.Denied);
      L.release_all t ~txn:1)

let test_deadlock_detection_victim () =
  (* classic 2-cycle: T1 holds A wants B; T2 holds B wants A.
     youngest (T2) dies *)
  let t1_done = ref false and t2_deadlocked = ref false in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         L.attach t 1;
         L.attach t 2;
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:1 name_a L.X L.Commit);
                Sched.yield ();
                ignore (L.lock t ~txn:1 name_b L.X L.Commit);
                t1_done := true;
                L.release_all t ~txn:1));
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:2 name_b L.X L.Commit);
                Sched.yield ();
                (match L.lock t ~txn:2 name_a L.X L.Commit with
                | L.Deadlock -> t2_deadlocked := true
                | L.Granted | L.Denied -> ());
                L.release_all t ~txn:2))));
  Alcotest.(check bool) "youngest chosen as victim" true !t2_deadlocked;
  Alcotest.(check bool) "survivor completes" true !t1_done

let test_deadlock_victim_aborted_while_waiting () =
  (* T2 (young) blocks first; T1's request then closes the cycle, and the
     detector must abort T2 at its suspension point *)
  let t2_aborted = ref false and t1_done = ref false in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         L.attach t 1;
         L.attach t 2;
         ignore (L.lock t ~txn:1 name_a L.X L.Commit);
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:2 name_b L.X L.Commit);
                (match L.lock t ~txn:2 name_a L.X L.Commit with
                | L.Deadlock -> t2_aborted := true
                | L.Granted | L.Denied -> ());
                L.release_all t ~txn:2));
         Sched.yield ();
         ignore (L.lock t ~txn:1 name_b L.X L.Commit);
         t1_done := true;
         L.release_all t ~txn:1));
  Alcotest.(check bool) "waiting victim aborted" true !t2_aborted;
  Alcotest.(check bool) "requester proceeds" true !t1_done

let test_three_cycle () =
  let deadlocks = ref 0 and completions = ref 0 in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         for i = 1 to 3 do
           L.attach t i
         done;
         let names = [| name_a; name_b; L.Table 3 |] in
         for i = 0 to 2 do
           ignore
             (Sched.spawn (fun () ->
                  let txn = i + 1 in
                  ignore (L.lock t ~txn names.(i) L.X L.Commit);
                  Sched.yield ();
                  (match L.lock t ~txn names.((i + 1) mod 3) L.X L.Commit with
                  | L.Deadlock -> incr deadlocks
                  | L.Granted -> incr completions
                  | L.Denied -> ());
                  L.release_all t ~txn))
         done));
  Alcotest.(check int) "exactly one victim" 1 !deadlocks;
  Alcotest.(check int) "others complete" 2 !completions

let test_no_victim_exempt () =
  (* no-victim txns must never be chosen; the other cycle member dies *)
  let old_died = ref false and young_survived = ref false in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         L.attach t 1;
         L.attach t 2;
         L.set_no_victim t 2;
         (* youngest but exempt *)
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:1 name_a L.X L.Commit);
                Sched.yield ();
                (match L.lock t ~txn:1 name_b L.X L.Commit with
                | L.Deadlock -> old_died := true
                | L.Granted | L.Denied -> ());
                L.release_all t ~txn:1));
         ignore
           (Sched.spawn (fun () ->
                ignore (L.lock t ~txn:2 name_b L.X L.Commit);
                Sched.yield ();
                ignore (L.lock t ~txn:2 name_a L.X L.Commit);
                young_survived := true;
                L.release_all t ~txn:2))));
  Alcotest.(check bool) "exempt survives" true !young_survived;
  Alcotest.(check bool) "other member dies" true !old_died

let test_manual_release () =
  Sched.run_value (fun () ->
      let t = L.create () in
      ignore (L.lock t ~txn:1 (rid 1) L.S L.Manual);
      L.release t ~txn:1 (rid 1);
      Alcotest.(check bool) "released" true (L.holds t ~txn:1 (rid 1) = None);
      ignore (L.lock t ~txn:1 (rid 2) L.S L.Commit);
      Alcotest.(check bool) "commit-duration release refused" true
        (match L.release t ~txn:1 (rid 2) with
        | () -> false
        | exception Invalid_argument _ -> true))

let test_release_all_wakes () =
  let woken = ref 0 in
  ignore
    (Sched.run (fun () ->
         let t = L.create () in
         ignore (L.lock t ~txn:1 (rid 1) L.X L.Commit);
         ignore (L.lock t ~txn:1 (rid 2) L.X L.Commit);
         for i = 2 to 3 do
           ignore
             (Sched.spawn (fun () ->
                  ignore (L.lock t ~txn:i (rid (i - 1)) L.S L.Commit);
                  incr woken;
                  L.release_all t ~txn:i))
         done;
         Sched.yield ();
         Alcotest.(check int) "held count" 2 (L.held_count t ~txn:1);
         L.release_all t ~txn:1));
  Alcotest.(check int) "both waiters woken" 2 !woken

let test_held_locks_snapshot () =
  Sched.run_value (fun () ->
      let t = L.create () in
      ignore (L.lock t ~txn:1 (rid 1) L.X L.Commit);
      ignore (L.lock t ~txn:1 name_a L.IX L.Commit);
      let held = L.held_locks t ~txn:1 in
      Alcotest.(check int) "two entries" 2 (List.length held);
      Alcotest.(check bool) "modes recorded" true
        (List.mem (rid 1, L.X) held && List.mem (name_a, L.IX) held))

let () =
  Alcotest.run "lock"
    [
      ( "matrix",
        [
          Alcotest.test_case "compatibility" `Quick test_compat_matrix;
          Alcotest.test_case "supremum" `Quick test_supremum_lattice;
        ] );
      ( "grants",
        [
          Alcotest.test_case "grant and conflict" `Quick test_grant_and_conflict;
          Alcotest.test_case "blocking grant" `Quick test_blocking_grant_on_release;
          Alcotest.test_case "instant leaves nothing" `Quick test_instant_leaves_nothing;
          Alcotest.test_case "instant waits" `Quick test_instant_waits_for_conflict;
          Alcotest.test_case "conversion upgrade" `Quick test_conversion_upgrade;
          Alcotest.test_case "conversion priority" `Quick test_conversion_priority;
          Alcotest.test_case "fifo no barging" `Quick test_fifo_no_barging;
          Alcotest.test_case "manual release" `Quick test_manual_release;
          Alcotest.test_case "release_all wakes" `Quick test_release_all_wakes;
          Alcotest.test_case "held locks snapshot" `Quick test_held_locks_snapshot;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "2-cycle youngest victim" `Quick test_deadlock_detection_victim;
          Alcotest.test_case "waiting victim aborted" `Quick test_deadlock_victim_aborted_while_waiting;
          Alcotest.test_case "3-cycle" `Quick test_three_cycle;
          Alcotest.test_case "no-victim exempt" `Quick test_no_victim_exempt;
        ] );
    ]
