(* ARIES/IM B+-tree: functional behaviour, SMOs, invariants, model-based
   property tests. Small pages force frequent splits and page deletes. *)

open Aries_util
module Key = Aries_page.Key
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Txnmgr = Aries_txn.Txnmgr
module Db = Aries_db.Db

let rid i = { Ids.rid_page = 1000 + (i / 100); rid_slot = i mod 100 }

let fresh ?(page_size = 384) ?(unique = true) ?config () =
  let db = Db.create ~page_size ?config () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"t" ~unique))
  in
  (db, tree)

let insert_n db tree ?(start = 0) n =
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = start to start + n - 1 do
            Btree.insert tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
          done))

let test_empty_fetch () =
  let db, tree = fresh () in
  let r = Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Btree.fetch tree txn "nope")) in
  Alcotest.(check bool) "empty tree fetch" true (r = None);
  Btree.check_invariants tree

let test_insert_fetch () =
  let db, tree = fresh () in
  insert_n db tree 50;
  Btree.check_invariants tree;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 49 do
            let v = Printf.sprintf "key%05d" i in
            match Btree.fetch tree txn v with
            | Some k ->
                Alcotest.(check string) "value" v k.Key.value;
                Alcotest.(check int) "rid slot" (i mod 100) k.Key.rid.Ids.rid_slot
            | None -> Alcotest.failf "missing %s" v
          done;
          Alcotest.(check bool) "absent" true (Btree.fetch tree txn "zzz" = None)))

let test_split_growth () =
  let db, tree = fresh () in
  insert_n db tree 400;
  Btree.check_invariants tree;
  Alcotest.(check bool) "tree grew" true (Btree.height tree >= 1);
  Alcotest.(check int) "all keys" 400 (List.length (Btree.to_list tree));
  let sorted = List.map fst (Btree.to_list tree) in
  Alcotest.(check (list string)) "sorted" (List.sort compare sorted) sorted

let test_descending_inserts () =
  let db, tree = fresh () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 299 downto 0 do
            Btree.insert tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
          done));
  Btree.check_invariants tree;
  Alcotest.(check int) "all keys" 300 (List.length (Btree.to_list tree))

let test_delete_and_page_delete () =
  let db, tree = fresh () in
  insert_n db tree 300;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 249 do
            Btree.delete tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
          done));
  Btree.check_invariants tree;
  Alcotest.(check int) "remaining" 50 (List.length (Btree.to_list tree));
  (* delete the rest: the tree must collapse to an empty root *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 250 to 299 do
            Btree.delete tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
          done));
  Btree.check_invariants tree;
  Alcotest.(check int) "empty" 0 (List.length (Btree.to_list tree))

let test_unique_violation () =
  let db, tree = fresh () in
  insert_n db tree 5;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          match Btree.insert tree txn ~value:"key00003" ~rid:(rid 999) with
          | () -> Alcotest.fail "expected Unique_violation"
          | exception Btree.Unique_violation _ -> ()))

let test_nonunique_duplicates () =
  let db, tree = fresh ~unique:false () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 199 do
            Btree.insert tree txn ~value:(Printf.sprintf "dup%02d" (i mod 10)) ~rid:(rid i)
          done));
  Btree.check_invariants tree;
  Alcotest.(check int) "all dups stored" 200 (List.length (Btree.to_list tree));
  (* scan one value: 20 rids *)
  let n =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn ->
            let c = Btree.open_scan tree txn ~comparison:`Ge "dup05" in
            let rec go acc =
              match Btree.fetch_next tree txn c ~stop:("dup05", `Le) () with
              | Some _ -> go (acc + 1)
              | None -> acc
            in
            go 0))
  in
  Alcotest.(check int) "20 rids under dup05" 20 n

let test_scan_range () =
  let db, tree = fresh () in
  insert_n db tree 100;
  let keys =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn ->
            let c = Btree.open_scan tree txn ~comparison:`Ge "key00010" in
            let rec go acc =
              match Btree.fetch_next tree txn c ~stop:("key00019", `Le) () with
              | Some k -> go (k.Key.value :: acc)
              | None -> List.rev acc
            in
            go []))
  in
  Alcotest.(check int) "10 keys in range" 10 (List.length keys)

let test_fetch_ge_gt () =
  let db, tree = fresh () in
  insert_n db tree 20;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          (match Btree.fetch tree txn ~comparison:`Ge "key00005" with
          | Some k -> Alcotest.(check string) "ge exact" "key00005" k.Key.value
          | None -> Alcotest.fail "ge");
          (match Btree.fetch tree txn ~comparison:`Gt "key00005" with
          | Some k -> Alcotest.(check string) "gt next" "key00006" k.Key.value
          | None -> Alcotest.fail "gt");
          match Btree.fetch tree txn ~comparison:`Ge "key00005a" with
          | Some k -> Alcotest.(check string) "ge between" "key00006" k.Key.value
          | None -> Alcotest.fail "ge between"))

let test_rollback_inserts () =
  let db, tree = fresh () in
  insert_n db tree 50;
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      for i = 50 to 120 do
        Btree.insert tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
      done;
      Txnmgr.rollback db.Db.mgr txn);
  Btree.check_invariants tree;
  Alcotest.(check int) "rollback removed inserts" 50 (List.length (Btree.to_list tree))

let test_rollback_deletes () =
  let db, tree = fresh () in
  insert_n db tree 200;
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      for i = 30 to 180 do
        Btree.delete tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
      done;
      Txnmgr.rollback db.Db.mgr txn);
  Btree.check_invariants tree;
  Alcotest.(check int) "rollback restored deletes" 200 (List.length (Btree.to_list tree))

let test_rollback_mixed_after_splits () =
  (* inserts that caused splits must roll back without undoing the splits;
     other keys must survive *)
  let db, tree = fresh ~page_size:320 () in
  insert_n db tree 60;
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      for i = 60 to 200 do
        Btree.insert tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
      done;
      for i = 0 to 29 do
        Btree.delete tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
      done;
      Txnmgr.rollback db.Db.mgr txn);
  Btree.check_invariants tree;
  let vals = List.map fst (Btree.to_list tree) in
  Alcotest.(check int) "back to 60" 60 (List.length vals);
  Alcotest.(check string) "first restored" "key00000" (List.hd vals)

let test_savepoint_partial_rollback () =
  let db, tree = fresh () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 19 do
            Btree.insert tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
          done;
          let sp = Txnmgr.savepoint txn in
          for i = 20 to 39 do
            Btree.insert tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
          done;
          Txnmgr.rollback_to db.Db.mgr txn sp));
  Btree.check_invariants tree;
  Alcotest.(check int) "partial rollback" 20 (List.length (Btree.to_list tree))

(* ---------- Fetch Next repositioning (§2.3) ---------- *)

let test_cursor_survives_own_delete () =
  (* "The current key may not be in the index anymore due to a key deletion
     earlier by the same transaction": the cursor repositions via search *)
  let db, tree = fresh () in
  insert_n db tree 20;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let c = Btree.open_scan tree txn ~comparison:`Ge "key00005" in
          (match Btree.fetch_next tree txn c () with
          | Some k -> Alcotest.(check string) "positioned" "key00005" k.Key.value
          | None -> Alcotest.fail "empty scan");
          (* delete the key under the cursor, same transaction *)
          Btree.delete tree txn ~value:"key00006" ~rid:(rid 6);
          (match Btree.fetch_next tree txn c () with
          | Some k -> Alcotest.(check string) "skips own deletion" "key00007" k.Key.value
          | None -> Alcotest.fail "lost position");
          (* delete the CURRENT key too: reposition by search *)
          Btree.delete tree txn ~value:"key00007" ~rid:(rid 7);
          match Btree.fetch_next tree txn c () with
          | Some k -> Alcotest.(check string) "repositions" "key00008" k.Key.value
          | None -> Alcotest.fail "lost position after current-key delete"))

let test_cursor_survives_splits () =
  (* the remembered leaf LSN changes under the cursor (same-txn inserts
     cause splits); fetch_next must reposition, not skip or repeat *)
  let db, tree = fresh ~page_size:320 () in
  insert_n db tree 30;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let c = Btree.open_scan tree txn ~comparison:`Ge "" in
          let seen = ref [] in
          let rec go n =
            match Btree.fetch_next tree txn c () with
            | Some k ->
                seen := k.Key.value :: !seen;
                (* grow the tree mid-scan *)
                if n = 5 then
                  for i = 100 to 160 do
                    Btree.insert tree txn ~value:(Printf.sprintf "key%05d" i) ~rid:(rid i)
                  done;
                go (n + 1)
            | None -> ()
          in
          go 0;
          let seen = List.rev !seen in
          Alcotest.(check bool) "saw the original upper keys exactly once" true
            (List.length (List.filter (fun v -> v >= "key00006" && v <= "key00029") seen) = 24);
          let sorted = List.sort_uniq compare seen in
          Alcotest.(check int) "no duplicates in scan" (List.length seen) (List.length sorted)))

let test_scan_empty_range () =
  let db, tree = fresh () in
  insert_n db tree 10;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let c = Btree.open_scan tree txn ~comparison:`Gt "key00009" in
          Alcotest.(check bool) "empty tail" true (Btree.fetch_next tree txn c () = None);
          (* a second call after exhaustion stays None *)
          Alcotest.(check bool) "stays exhausted" true (Btree.fetch_next tree txn c () = None)))

(* ---------- model-based property test ---------- *)

module SM = Map.Make (String)

let model_prop seed =
  let rng = Rng.create seed in
  let db, tree = fresh ~page_size:320 () in
  let model = ref SM.empty in
  Db.run_exn db (fun () ->
      for _ = 1 to 400 do
        Db.with_txn db (fun txn ->
            for _ = 1 to 5 do
              let i = Rng.int rng 120 in
              let v = Printf.sprintf "k%04d" i in
              if Rng.bool rng then begin
                if not (SM.mem v !model) then begin
                  Btree.insert tree txn ~value:v ~rid:(rid i);
                  model := SM.add v (rid i) !model
                end
              end
              else if SM.mem v !model then begin
                Btree.delete tree txn ~value:v ~rid:(SM.find v !model);
                model := SM.remove v !model
              end
            done)
      done);
  Btree.check_invariants tree;
  let actual = List.map fst (Btree.to_list tree) in
  let expected = List.map fst (SM.bindings !model) in
  actual = expected

let qcheck_model =
  QCheck.Test.make ~name:"btree matches sorted-map model under random committed ops" ~count:12
    QCheck.small_int model_prop

(* rollback version: every txn rolls back, tree must equal the pre state *)
let model_rollback_prop seed =
  let rng = Rng.create seed in
  let db, tree = fresh ~page_size:320 ~unique:false () in
  insert_n db tree 80;
  let before = Btree.to_list tree in
  Db.run_exn db (fun () ->
      for _ = 1 to 30 do
        let txn = Txnmgr.begin_txn db.Db.mgr in
        for _ = 1 to 15 do
          let i = Rng.int rng 2000 + 500 in
          let v = Printf.sprintf "key%05d" i in
          try Btree.insert tree txn ~value:v ~rid:(rid i)
          with Btree.Unique_violation _ -> ()
        done;
        Txnmgr.rollback db.Db.mgr txn
      done);
  Btree.check_invariants tree;
  Btree.to_list tree = before

let qcheck_rollback =
  QCheck.Test.make ~name:"rolled-back transactions leave no trace" ~count:8 QCheck.small_int
    model_rollback_prop

let () =
  Alcotest.run "btree"
    [
      ( "basic",
        [
          Alcotest.test_case "empty fetch" `Quick test_empty_fetch;
          Alcotest.test_case "insert+fetch" `Quick test_insert_fetch;
          Alcotest.test_case "splits" `Quick test_split_growth;
          Alcotest.test_case "descending inserts" `Quick test_descending_inserts;
          Alcotest.test_case "deletes + page deletes" `Quick test_delete_and_page_delete;
          Alcotest.test_case "unique violation" `Quick test_unique_violation;
          Alcotest.test_case "nonunique duplicates" `Quick test_nonunique_duplicates;
          Alcotest.test_case "range scan" `Quick test_scan_range;
          Alcotest.test_case "fetch ge/gt" `Quick test_fetch_ge_gt;
        ] );
      ( "cursors",
        [
          Alcotest.test_case "repositioning after own deletes" `Quick
            test_cursor_survives_own_delete;
          Alcotest.test_case "repositioning across splits" `Quick test_cursor_survives_splits;
          Alcotest.test_case "empty range" `Quick test_scan_empty_range;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "inserts" `Quick test_rollback_inserts;
          Alcotest.test_case "deletes" `Quick test_rollback_deletes;
          Alcotest.test_case "mixed after splits" `Quick test_rollback_mixed_after_splits;
          Alcotest.test_case "savepoint" `Quick test_savepoint_partial_rollback;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest qcheck_model; QCheck_alcotest.to_alcotest qcheck_rollback ]
      );
    ]
