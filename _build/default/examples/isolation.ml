(* Isolation levels on the same schedule: repeatable read (degree 3, the
   paper's default) versus cursor stability (degree 2, §1.2).

   A reader fetches the same key twice; between the reads, a writer tries
   to delete it and commit. Under RR the reader's commit-duration S lock
   makes the writer wait, so the re-read sees the same key (and the phantom
   test shows absent keys stay absent). Under CS the lock is released after
   the first read, the writer proceeds, and the re-read legitimately
   differs — but never sees uncommitted data.

   Run with: dune exec examples/isolation.exe *)

module Ids = Aries_util.Ids
module Lockmgr = Aries_lock.Lockmgr
module Key = Aries_page.Key
module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db

let rid i = { Ids.rid_page = 800; rid_slot = i }

let v i = Printf.sprintf "row%03d" i

let show = function Some (k : Key.t) -> k.Key.value | None -> "(not found)"

let run_schedule isolation =
  let db = Db.create () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"t" ~unique:true))
  in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 9 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  let first = ref None and second = ref None and writer_waited = ref false in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn ~name:"reader" (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                first := Btree.fetch tree t1 ~isolation (v 5);
                for _ = 1 to 8 do
                  Sched.yield ()
                done;
                second := Btree.fetch tree t1 ~isolation (v 5);
                Txnmgr.commit db.Db.mgr t1));
         ignore
           (Sched.spawn ~name:"writer" (fun () ->
                Sched.yield ();
                let t2 = Txnmgr.begin_txn db.Db.mgr in
                let started = ref false in
                ignore
                  (Sched.spawn ~name:"observer" (fun () ->
                       for _ = 1 to 4 do
                         Sched.yield ()
                       done;
                       if not !started then writer_waited := true));
                (* under data-only locking, deleting a record means taking
                   its commit-duration X record lock first — that lock IS
                   the index key lock (what the Table layer does) *)
                Txnmgr.lock db.Db.mgr t2 (Lockmgr.Rid (rid 5)) Lockmgr.X Lockmgr.Commit;
                Btree.delete tree t2 ~value:(v 5) ~rid:(rid 5);
                started := true;
                Txnmgr.commit db.Db.mgr t2))));
  (!first, !second, !writer_waited)

let () =
  print_endline "== isolation levels: the same schedule under RR and CS ==";
  let f, s, waited = run_schedule `Rr in
  Printf.printf "repeatable read:  1st read %-12s 2nd read %-12s writer blocked: %b\n" (show f)
    (show s) waited;
  let f, s, waited = run_schedule `Cs in
  Printf.printf "cursor stability: 1st read %-12s 2nd read %-12s writer blocked: %b\n" (show f)
    (show s) waited;
  print_endline "";
  print_endline "Under RR the next-key/current-key locks of Figure 2 are held to commit:";
  print_endline "the delete waits, the read repeats. Under CS the current-key lock lives";
  print_endline "only while the cursor is positioned: the delete slips between the reads";
  print_endline "(a non-repeatable read), yet no read ever observes uncommitted state."
