(* Concurrent bank transfers: many fibers transfer money between accounts
   under repeatable read. Deadlock victims are rolled back automatically
   and retried; the total balance is conserved whatever the interleaving.

   Run with: dune exec examples/bank.exe -- [seed] *)

module Rng = Aries_util.Rng
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db
module Table = Aries_db.Table

let n_accounts = 16

let n_tellers = 6

let transfers_per_teller = 40

let initial_balance = 1_000

let specs = [ { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun row -> row.(0)) } ]

let acct i = Printf.sprintf "acct%02d" i

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42 in
  Printf.printf "== bank: %d tellers x %d transfers over %d accounts (seed %d) ==\n" n_tellers
    transfers_per_teller n_accounts seed;
  let db = Db.create () in
  let tbl =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs))
  in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to n_accounts - 1 do
            ignore (Table.insert tbl txn [| acct i; string_of_int initial_balance |])
          done));

  let committed = ref 0 and deadlocks = ref 0 in
  let transfer txn a b amount =
    match
      (Table.fetch tbl txn ~index:"pk" (acct a), Table.fetch tbl txn ~index:"pk" (acct b))
    with
    | Some (rid_a, row_a), Some (rid_b, row_b) ->
        let bal_a = int_of_string row_a.(1) and bal_b = int_of_string row_b.(1) in
        if bal_a >= amount then begin
          Table.update tbl txn rid_a [| acct a; string_of_int (bal_a - amount) |];
          Table.update tbl txn rid_b [| acct b; string_of_int (bal_b + amount) |]
        end
    | _ -> failwith "missing account"
  in

  let result =
    Db.run db ~policy:(Sched.Random seed) ~yield_probability:0.2 (fun () ->
        for teller = 0 to n_tellers - 1 do
          let rng = Rng.create (seed + (1000 * teller)) in
          ignore
            (Sched.spawn
               ~name:(Printf.sprintf "teller-%d" teller)
               (fun () ->
                 let rec attempt tries a b amount =
                   match Db.with_txn db (fun txn -> transfer txn a b amount) with
                   | () -> incr committed
                   | exception Txnmgr.Aborted _ ->
                       incr deadlocks;
                       (* the victim was rolled back; retry a few times *)
                       if tries < 5 then attempt (tries + 1) a b amount
                 in
                 for _ = 1 to transfers_per_teller do
                   let a = Rng.int rng n_accounts in
                   let b = (a + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts in
                   attempt 0 a b (Rng.int rng 100)
                 done))
        done)
  in
  (match result.Sched.outcome with
  | Sched.Completed -> ()
  | Sched.Stalled _ -> failwith "stalled!"
  | Sched.Interrupted _ -> failwith "interrupted?!");
  List.iter
    (fun (_, name, e) -> Printf.printf "fiber %s failed: %s\n" name (Printexc.to_string e))
    result.Sched.exns;

  let rows =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.scan tbl txn ~index:"pk" "" ()))
  in
  let total = List.fold_left (fun acc (_, row) -> acc + int_of_string row.(1)) 0 rows in
  Printf.printf "transfers committed: %d, deadlock aborts (retried): %d\n" !committed !deadlocks;
  List.iter (fun (_, row) -> Printf.printf "  %s: %6s\n" row.(0) row.(1)) rows;
  Printf.printf "total balance: %d (expected %d) -> %s\n" total
    (n_accounts * initial_balance)
    (if total = n_accounts * initial_balance then "CONSERVED" else "VIOLATED!")
