(* Quickstart: a table with a primary-key index and a secondary index,
   transactional CRUD, range scans, rollback, and a crash + restart.

   Run with: dune exec examples/quickstart.exe *)

module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Db = Aries_db.Db
module Table = Aries_db.Table

let specs =
  [
    (* unique primary key on the name column *)
    { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun row -> row.(0)) };
    (* nonunique secondary index on the city column *)
    { Table.sp_name = "city"; sp_unique = false; sp_key = (fun row -> row.(1)) };
  ]

let () =
  print_endline "== ARIES/IM quickstart ==";
  let db = Db.create ~page_size:4096 () in

  (* Everything runs inside the cooperative scheduler; [Db.run_exn] runs one
     computation to completion. [Db.with_txn] brackets a transaction. *)
  let tbl =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs))
  in

  (* --- insert some rows --- *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          List.iter
            (fun (name, city, balance) ->
              ignore (Table.insert tbl txn [| name; city; balance |]))
            [
              ("alice", "san-jose", "120");
              ("bob", "austin", "80");
              ("carol", "san-jose", "200");
              ("dave", "almaden", "45");
            ]));
  Printf.printf "inserted %d rows\n" (Table.count tbl);

  (* --- point lookup through the unique index --- *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          match Table.fetch tbl txn ~index:"pk" "carol" with
          | Some (rid, row) ->
              Printf.printf "fetch carol -> rid %s, city %s, balance %s\n"
                (Aries_util.Ids.rid_to_string rid)
                row.(1) row.(2)
          | None -> print_endline "carol not found?!"));

  (* --- range scan through the secondary index --- *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let in_sj = Table.scan tbl txn ~index:"city" "san-jose" ~stop:("san-jose", `Le) () in
          Printf.printf "residents of san-jose: %s\n"
            (String.concat ", " (List.map (fun (_, row) -> row.(0)) in_sj))));

  (* --- a transaction that rolls back leaves no trace --- *)
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      ignore (Table.insert tbl txn [| "eve"; "nowhere"; "0" |]);
      Printf.printf "inside txn: %d rows\n" (Table.count tbl);
      Txnmgr.rollback db.Db.mgr txn);
  Printf.printf "after rollback: %d rows\n" (Table.count tbl);

  (* --- an update re-keys exactly the indexes whose key changed --- *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          match Table.fetch tbl txn ~index:"pk" "bob" with
          | Some (rid, _) -> Table.update tbl txn rid [| "bob"; "san-jose"; "99" |]
          | None -> ()));

  (* --- crash: volatile state vanishes; restart recovers committed work --- *)
  print_endline "simulating a system crash...";
  let db = Db.crash db in
  let report = Db.run_exn db (fun () -> Db.restart db) in
  Format.printf "restart report:@.%a@." Aries_recovery.Restart.pp_report report;
  let tbl = Table.open_existing db ~id:1 specs in
  Printf.printf "after restart: %d rows\n" (Table.count tbl);
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let in_sj = Table.scan tbl txn ~index:"city" "san-jose" ~stop:("san-jose", `Le) () in
          Printf.printf "residents of san-jose now: %s\n"
            (String.concat ", " (List.map (fun (_, row) -> row.(0)) in_sj))));
  List.iter (fun (_, bt) -> Btree.check_invariants bt) (Table.indexes tbl);
  print_endline "index invariants hold. done."
