examples/isolation.mli:
