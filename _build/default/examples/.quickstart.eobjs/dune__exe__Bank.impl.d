examples/bank.ml: Aries_db Aries_sched Aries_txn Aries_util Array List Printexc Printf Sys
