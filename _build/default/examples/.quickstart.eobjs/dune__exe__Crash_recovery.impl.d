examples/crash_recovery.ml: Aries_btree Aries_buffer Aries_db Aries_page Aries_recovery Aries_txn Aries_util Aries_wal Format List Printf
