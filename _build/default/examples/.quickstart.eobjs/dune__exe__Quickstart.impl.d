examples/quickstart.ml: Aries_btree Aries_db Aries_recovery Aries_txn Aries_util Array Format List Printf String
