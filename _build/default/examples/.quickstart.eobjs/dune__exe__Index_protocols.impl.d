examples/index_protocols.ml: Aries_btree Aries_db Aries_util Array List Printf
