examples/bank.mli:
