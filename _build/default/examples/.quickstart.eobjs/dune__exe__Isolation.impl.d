examples/isolation.ml: Aries_btree Aries_db Aries_lock Aries_page Aries_sched Aries_txn Aries_util Printf
