examples/index_protocols.mli:
