examples/quickstart.mli:
