(* ariesdb — a small key-value store CLI over the ARIES/IM engine.

   Every invocation behaves like a machine power cycle: it loads the stable
   state from the snapshot file, runs ARIES restart recovery, performs the
   command transactionally, takes a checkpoint, and saves the stable state
   back. `ariesdb log FILE` pretty-prints the write-ahead log, which makes
   the protocol's structure (updates, CLRs, nested top actions, checkpoints)
   visible on real data.

     ariesdb init  /tmp/demo.adb
     ariesdb put   /tmp/demo.adb alice 41
     ariesdb put   /tmp/demo.adb bob 17
     ariesdb get   /tmp/demo.adb alice
     ariesdb scan  /tmp/demo.adb
     ariesdb del   /tmp/demo.adb bob
     ariesdb log   /tmp/demo.adb
     ariesdb stats /tmp/demo.adb
     ariesdb verify /tmp/demo.adb *)

open Cmdliner
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Ixlog = Aries_btree.Ixlog
module Btree = Aries_btree.Btree
module Db = Aries_db.Db
module Table = Aries_db.Table
module Reclog = Aries_db.Reclog

let table_id = 1

let specs = [ { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun row -> row.(0)) } ]

let with_db path f =
  let db = Db.load path in
  let result =
    Db.run_exn db (fun () ->
        ignore (Db.restart db);
        let tbl = Table.open_existing db ~id:table_id specs in
        f db tbl)
  in
  Db.checkpoint db;
  Aries_buffer.Bufpool.flush_all db.Db.pool;
  Db.save db path;
  result

let cmd_init path =
  let db = Db.create () in
  ignore
    (Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:table_id specs)));
  Db.checkpoint db;
  Aries_buffer.Bufpool.flush_all db.Db.pool;
  Db.save db path;
  Printf.printf "initialized %s\n" path;
  0

let cmd_put path key value =
  with_db path (fun db tbl ->
      Db.with_txn db (fun txn ->
          match Table.fetch tbl txn ~index:"pk" key with
          | Some (rid, _) -> Table.update tbl txn rid [| key; value |]
          | None -> ignore (Table.insert tbl txn [| key; value |])));
  Printf.printf "ok\n";
  0

let cmd_get path key =
  let r = with_db path (fun db tbl -> Db.with_txn db (fun txn -> Table.fetch tbl txn ~index:"pk" key)) in
  match r with
  | Some (_, row) ->
      Printf.printf "%s\n" row.(1);
      0
  | None ->
      Printf.eprintf "not found\n";
      1

let cmd_del path key =
  let found =
    with_db path (fun db tbl ->
        Db.with_txn db (fun txn ->
            match Table.fetch tbl txn ~index:"pk" key with
            | Some (rid, _) ->
                Table.delete tbl txn rid;
                true
            | None -> false))
  in
  if found then begin
    Printf.printf "deleted\n";
    0
  end
  else begin
    Printf.eprintf "not found\n";
    1
  end

let cmd_scan path prefix =
  let rows =
    with_db path (fun db tbl ->
        Db.with_txn db (fun txn ->
            let stop =
              if String.equal prefix "" then None else Some (prefix ^ "\xff", `Le)
            in
            Table.scan tbl txn ~index:"pk" prefix ?stop ()))
  in
  List.iter (fun (_, row) -> Printf.printf "%s\t%s\n" row.(0) row.(1)) rows;
  0

let describe_record (r : Logrec.t) =
  let payload =
    if r.Logrec.rm_id = Ixlog.rm_id then
      Format.asprintf "%a" Ixlog.pp (Ixlog.decode ~op:r.Logrec.op r.Logrec.body)
    else if r.Logrec.rm_id = Reclog.rm_id then Reclog.op_name r.Logrec.op
    else if r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = 0 then "(dummy: end of nested top action)"
    else ""
  in
  Printf.printf "%8d %-10s txn=%-3d prev=%-8d page=%-4d %s%s\n" r.Logrec.lsn
    (Logrec.kind_to_string r.Logrec.kind)
    r.Logrec.txn r.Logrec.prev_lsn r.Logrec.page payload
    (if r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id <> 0 then
       Printf.sprintf " undo_nxt=%d" r.Logrec.undo_nxt_lsn
     else "")

let cmd_log path =
  let db = Db.load path in
  Printf.printf "%8s %-10s %s\n" "LSN" "KIND" "DETAILS";
  Logmgr.iter_from db.Db.wal Lsn.nil describe_record;
  Printf.printf "(master checkpoint at LSN %d; %d records, %d bytes)\n"
    (Logmgr.master db.Db.wal)
    (Logmgr.record_count db.Db.wal)
    (Logmgr.size_bytes db.Db.wal);
  0

let cmd_stats path =
  with_db path (fun db tbl ->
      let bt = Table.index tbl "pk" in
      Printf.printf "records:        %d\n" (Table.count tbl);
      Printf.printf "index height:   %d\n" (Btree.height bt);
      Printf.printf "index pages:    %d\n" (Btree.page_count bt);
      Printf.printf "disk pages:     %d\n" (Aries_page.Disk.page_count db.Db.disk);
      Printf.printf "log records:    %d (%d bytes)\n"
        (Logmgr.record_count db.Db.wal)
        (Logmgr.size_bytes db.Db.wal));
  0

let cmd_trim path =
  let db = Db.load path in
  let freed =
    Db.run_exn db (fun () ->
        ignore (Db.restart db);
        Db.checkpoint db;
        Db.trim_log db)
  in
  Aries_buffer.Bufpool.flush_all db.Db.pool;
  Db.save db path;
  Printf.printf "reclaimed %d bytes of log; %d records remain\n" freed
    (Logmgr.record_count db.Db.wal);
  0

let cmd_verify path =
  with_db path (fun _db tbl ->
      List.iter (fun (_, bt) -> Btree.check_invariants bt) (Table.indexes tbl));
  Printf.printf "all index invariants hold\n";
  0

(* ---- cmdliner wiring ---- *)

let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let key_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"KEY")

let value_arg = Arg.(required & pos 2 (some string) None & info [] ~docv:"VALUE")

let prefix_arg = Arg.(value & pos 1 string "" & info [] ~docv:"PREFIX")

let term name doc t = Cmd.v (Cmd.info name ~doc) t

let cmds =
  [
    term "init" "create a new database snapshot" Term.(const cmd_init $ path_arg);
    term "put" "insert or update a key" Term.(const cmd_put $ path_arg $ key_arg $ value_arg);
    term "get" "look up a key" Term.(const cmd_get $ path_arg $ key_arg);
    term "del" "delete a key" Term.(const cmd_del $ path_arg $ key_arg);
    term "scan" "list keys (optionally by prefix)" Term.(const cmd_scan $ path_arg $ prefix_arg);
    term "log" "pretty-print the write-ahead log" Term.(const cmd_log $ path_arg);
    term "stats" "show storage statistics" Term.(const cmd_stats $ path_arg);
    term "trim" "checkpoint and reclaim log space" Term.(const cmd_trim $ path_arg);
    term "verify" "check index invariants" Term.(const cmd_verify $ path_arg);
  ]

let () =
  let info =
    Cmd.info "ariesdb" ~version:"1.0"
      ~doc:"a key-value store on the ARIES/IM index manager (SIGMOD 1992 reproduction)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
