(* The experiment harness: regenerates every figure-backed scenario (E series),
   every quantitative claim (Q series), and the Bechamel timing suites (T series).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e11 q1  # selected experiments
     dune exec bench/main.exe -- quick   # everything except timing
     dune exec bench/main.exe -- timing  # only the Bechamel suites
     dune exec bench/main.exe -- json    # commit-path metrics -> BENCH_PR2.json

   Plus the full-budget simulation sweep (the CI-budget version runs in
   dune runtest; see EXPERIMENTS.md "Simulation harness"):

     dune exec bench/main.exe -- sim                      # default big sweep
     dune exec bench/main.exe -- sim 512 48 400           # seeds, crash seeds, budget
     dune exec bench/main.exe -- sim smoke                # bounded CI sweep (see ci.sh)
     dune exec bench/main.exe -- sim smoke --faults       # fault-armed CI sweep (storage faults)
     dune exec bench/main.exe -- sim smoke --instant      # recovery-during-recovery CI sweep
     dune exec bench/main.exe -- sim smoke --streams      # multi-stream WAL crash-order sweep
     dune exec bench/main.exe -- sim smoke --mvcc         # MVCC snapshot-read crash sweep
     dune exec bench/main.exe -- sim smoke --shards       # sharded 2PC crash/kill/degrade sweep
     dune exec bench/main.exe -- sim smoke --shards --instant  # sharded instant-restart sweep
     dune exec bench/main.exe -- sim replay --shards <seed> <mode>  # re-run a SHARD-REPRO line
     dune exec bench/main.exe -- sim replay <seed> <k|->  # re-run one reproducer
     dune exec bench/main.exe -- sim replay <seed> <k|-> <cut>  # instant-restart reproducer
     ARIES_SIM_FAULT=wal.skip-flush dune exec bench/main.exe -- sim
                                          # demo: injected bug -> SIM-REPRO lines

   See DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
   the paper-vs-measured record. *)

let ppf = Format.std_formatter

let run_sim args =
  let module Sim = Aries_sim.Sim in
  let cfg = Aries_sim.Workload.default_cfg in
  (match Sys.getenv_opt "ARIES_SIM_FAULT" with
  | Some name when name <> "" ->
      Aries_util.Crashpoint.enable_fault name;
      Format.fprintf ppf "fault %S injected — the sweep should now fail loudly@." name
  | _ -> ());
  match args with
  | "smoke" :: rest ->
      (* the CI smoke sweep (see ci.sh): a bounded slice of the full sweep
         over both stock workloads — per-commit and group-commit + cleaner —
         with the checkpoint daemon enabled in both (Workload stock cfgs).
         With [--faults], the sweep instead runs the fault-armed workloads
         (torn writes, bit-rot, transient EIO): the gate there is
         {!Sim.fatal_failures} — a run must recover to the oracle or fail
         loudly with a typed [Storage_error]; tolerated typed failures are
         reported but don't fail the smoke. Small enough for every push,
         loud on any failure. *)
      let faults = List.mem "--faults" rest in
      let instant = List.mem "--instant" rest in
      let streams = List.mem "--streams" rest in
      let mvcc = List.mem "--mvcc" rest in
      let shards = List.mem "--shards" rest in
      let rest =
        List.filter
          (fun a ->
            a <> "--faults" && a <> "--instant" && a <> "--streams" && a <> "--mvcc"
            && a <> "--shards")
          rest
      in
      let geti i default =
        match List.nth_opt rest i with Some s -> int_of_string s | None -> default
      in
      let workloads =
        if mvcc then
          (* the MVCC snapshot-read sweep (PR 8): hot writers + full-tree
             snapshot scans + the version-GC daemon, per-commit and batched.
             Every scan validates its slice against the per-snapshot oracle,
             rule R9 is enforced online on every read, and each sampled
             crash point must restart (rebuilding the version store from
             the log) back to the committed-state oracle. *)
          [
            ("mvcc", Aries_sim.Workload.mvcc_cfg);
            ("mvcc+group", Aries_sim.Workload.mvcc_group_cfg);
          ]
        else if streams then
          (* the cross-stream crash-order sweep (PR 7): four WAL streams,
             crash-time per-stream flush shuffle armed, both commit modes.
             Every sampled crash point replays under a shuffled notion of
             which streams' tails survived; recovery must still converge to
             the fence-validated committed-state oracle. *)
          [
            ("multistream", Aries_sim.Workload.multistream_cfg);
            ("multistream+group", Aries_sim.Workload.multistream_group_cfg);
          ]
        else if faults then
          [
            ("faults", Aries_sim.Workload.fault_cfg);
            ("faults+group+cleaner", Aries_sim.Workload.fault_group_cfg);
            ("eio-only+group", Aries_sim.Workload.fault_eio_cfg);
          ]
        else [ ("default", cfg); ("group+cleaner", Aries_sim.Workload.group_cfg) ]
      in
      let failed = ref false in
      if shards then begin
        (* the sharded 2PC smoke (PR 10): a Sharddb cluster under the hash
           router — presumed-abort two-phase commit across shards, checked
           against the cross-shard committed-state oracle (fence-validated
           local commits for single-branch txns, durable coordinator
           decisions for multi-branch ones). The classic sweep covers seed
           runs, whole-cluster crash points, per-shard fail-stops with
           mid-run revival, and whole-run downed-shard degrade runs; with
           [--instant] every cut instant-restarts all shards and serves a
           second workload phase while in-doubt branches resolve. *)
        let module Shardsim = Aries_sim.Shardsim in
        let module Stats = Aries_util.Stats in
        let scfg = Shardsim.default_cfg in
        let print_counters () =
          let st = Stats.current () in
          Format.fprintf ppf
            "  2pc counters: %s=%d %s=%d %s=%d %s=%d %s=%d %s=%d@."
            Stats.txn_prepares (Stats.get st Stats.txn_prepares)
            Stats.txn_indoubt_restored (Stats.get st Stats.txn_indoubt_restored)
            Stats.txn_indoubt_resolved (Stats.get st Stats.txn_indoubt_resolved)
            Stats.shard_retries (Stats.get st Stats.shard_retries)
            Stats.shard_timeouts (Stats.get st Stats.shard_timeouts)
            Stats.deadlock_global_victims (Stats.get st Stats.deadlock_global_victims)
        in
        let dump_failures (s : Shardsim.summary) =
          failed := true;
          List.iter
            (fun rp -> Format.fprintf ppf "%s@." (Shardsim.reproducer_line rp))
            s.Shardsim.ss_failures;
          (match s.Shardsim.ss_failures with
          | rp :: _ ->
              List.iter (fun l -> Format.fprintf ppf "  %s@." l) rp.Shardsim.sp_trace;
              List.iter (fun l -> Format.fprintf ppf "  %s@." l) rp.Shardsim.sp_event_dump
          | [] -> ());
          print_counters ()
        in
        if instant then begin
          let nseeds = geti 0 2 and budget = geti 1 12 in
          Format.fprintf ppf
            "smoke shards instant: %d seeds x <=%d armed recovery cuts, %d shards@." nseeds
            budget scfg.Shardsim.shards;
          List.iter
            (fun seed ->
              let s = Shardsim.instant_sweep scfg ~seed ~budget in
              Format.fprintf ppf
                "  seed %d: %d runs, %d acked, %d in-doubt resolved, %d failure(s)@." seed
                s.Shardsim.ss_runs s.Shardsim.ss_acked s.Shardsim.ss_resolved
                (List.length s.Shardsim.ss_failures);
              if s.Shardsim.ss_failures <> [] then dump_failures s)
            (List.init nseeds (fun i -> 2001 + i));
          if !failed then exit 1;
          print_counters ();
          Format.fprintf ppf "sharded instant smoke sweep clean@."
        end
        else begin
          let nseeds = geti 0 6 and ncrash = geti 1 2 and budget = geti 2 18 in
          Format.fprintf ppf
            "smoke shards: %d seeds, %d crash seeds x <=%d points, %d shards@." nseeds ncrash
            budget scfg.Shardsim.shards;
          let s =
            Shardsim.sweep scfg
              ~seeds:(List.init nseeds (fun i -> i + 1))
              ~crash_seeds:(List.init ncrash (fun i -> 1001 + i))
              ~crash_budget:budget
          in
          Format.fprintf ppf
            "  %d runs, %d acked commits, %d in-doubt resolved, %d failure(s)@."
            s.Shardsim.ss_runs s.Shardsim.ss_acked s.Shardsim.ss_resolved
            (List.length s.Shardsim.ss_failures);
          if s.Shardsim.ss_failures <> [] then dump_failures s;
          if !failed then exit 1;
          print_counters ();
          Format.fprintf ppf "sharded smoke sweep clean@."
        end
      end
      else if instant then begin
        (* the recovery-during-recovery smoke (see ci.sh): cut the run at
           sampled durability events, serve a second workload while
           instant restart drains, and crash {e again} inside the drain —
           every second crash must classic-restart back to the two-phase
           oracle with zero discipline violations. *)
        let nseeds = geti 0 2 and budget = geti 1 24 in
        List.iter
          (fun (label, cfg) ->
            Format.fprintf ppf "smoke instant [%s]: %d seeds x <=%d armed recovery runs@."
              label nseeds budget;
            List.iter
              (fun seed ->
                let s = Sim.instant_sweep cfg ~seed ~budget in
                Format.fprintf ppf "  seed %d: %d armed runs, %d failure(s)@." seed
                  s.Sim.sm_crash_points
                  (List.length s.Sim.sm_failures);
                if s.Sim.sm_failures <> [] then begin
                  failed := true;
                  List.iter
                    (fun rp -> Format.fprintf ppf "%s@." (Sim.reproducer_line rp))
                    s.Sim.sm_failures
                end)
              (List.init nseeds (fun i -> 2001 + i)))
          workloads;
        if !failed then exit 1;
        Format.fprintf ppf "instant smoke sweep clean@."
      end
      else begin
        let nseeds = geti 0 16 and ncrash = geti 1 4 and budget = geti 2 40 in
        List.iter
          (fun (label, cfg) ->
            Format.fprintf ppf "smoke [%s]: %d seeds, %d crash seeds x <=%d points@." label
              nseeds ncrash budget;
            let s =
              Sim.sweep cfg
                ~seeds:(List.init nseeds (fun i -> i + 1))
                ~crash_seeds:(List.init ncrash (fun i -> 1001 + i))
                ~crash_budget:budget
            in
            let fatal = if faults then Sim.fatal_failures s else s.Sim.sm_failures in
            let tolerated = List.length s.Sim.sm_failures - List.length fatal in
            Format.fprintf ppf "  %d seed runs, %d crash points, %d fatal failure(s)%s@."
              s.Sim.sm_seed_runs s.Sim.sm_crash_points (List.length fatal)
              (if tolerated > 0 then Printf.sprintf " (+%d tolerated typed)" tolerated
               else "");
            if fatal <> [] then begin
              failed := true;
              List.iter (fun rp -> Format.fprintf ppf "%s@." (Sim.reproducer_line rp)) fatal
            end)
          workloads;
        if !failed then exit 1;
        Format.fprintf ppf "smoke sweep clean@."
      end
  | "replay" :: "--shards" :: seed :: m :: _ ->
      (* [sim replay --shards <seed> <mode>] re-runs one sharded reproducer;
         <mode> is the mode= token from a SHARD-REPRO line (run, crash=<k>,
         instant=<k>, kill=<v>@<k>, down=<k>). *)
      let module Shardsim = Aries_sim.Shardsim in
      let rp =
        {
          Shardsim.sp_seed = int_of_string seed;
          sp_mode = Shardsim.mode_of_string m;
          sp_failures = [];
          sp_trace = [];
          sp_event_dump = [];
        }
      in
      let r = Shardsim.replay Shardsim.default_cfg rp in
      Format.fprintf ppf "shard replay seed=%s mode=%s: %d events, %d gtxns, %d acked@." seed
        m r.Shardsim.sr_events r.Shardsim.sr_txns r.Shardsim.sr_acked;
      List.iter (fun l -> Format.fprintf ppf "  %s@." l) r.Shardsim.sr_trace;
      List.iter (fun l -> Format.fprintf ppf "  %s@." l) r.Shardsim.sr_event_dump;
      if r.Shardsim.sr_failures = [] then Format.fprintf ppf "run passed all checks@."
      else begin
        List.iter (fun f -> Format.fprintf ppf "FAILURE: %s@." f) r.Shardsim.sr_failures;
        exit 1
      end
  | "replay" :: seed :: k :: rest ->
      (* [sim replay <seed> <k|->] re-runs a classic reproducer;
         [sim replay <seed> <k|-> <cut>] an instant-restart one (phase 1
         cut at event <cut>, second crash at recovery-phase event <k>). *)
      let rp =
        {
          Sim.rp_seed = int_of_string seed;
          rp_crash_at = (if k = "-" then None else Some (int_of_string k));
          rp_instant_cut = (match rest with cut :: _ -> Some (int_of_string cut) | [] -> None);
          rp_failures = [];
          rp_trace = [];
          rp_event_dump = [];
        }
      in
      let r = Sim.replay cfg rp in
      Format.fprintf ppf "replay seed=%s crash_at=%s%s: %d events, %d txns@." seed k
        (match rp.Sim.rp_instant_cut with
        | Some c -> Printf.sprintf " instant_cut=%d" c
        | None -> "")
        r.Sim.rr_events r.Sim.rr_txns;
      List.iter (fun l -> Format.fprintf ppf "  %s@." l) r.Sim.rr_trace;
      if r.Sim.rr_failures = [] then Format.fprintf ppf "run passed all checks@."
      else begin
        List.iter (fun f -> Format.fprintf ppf "FAILURE: %s@." f) r.Sim.rr_failures;
        exit 1
      end
  | rest ->
      let geti i default =
        match List.nth_opt rest i with Some s -> int_of_string s | None -> default
      in
      let nseeds = geti 0 256 and ncrash = geti 1 24 and budget = geti 2 200 in
      Format.fprintf ppf
        "sim sweep: %d schedule seeds, %d crash seeds x <=%d crash points each@." nseeds
        ncrash budget;
      let progress line = Format.fprintf ppf "  %s@." line in
      let t0 = Sys.time () in
      let s =
        Sim.sweep ~progress cfg
          ~seeds:(List.init nseeds (fun i -> i + 1))
          ~crash_seeds:(List.init ncrash (fun i -> 1001 + i))
          ~crash_budget:budget
      in
      Format.fprintf ppf
        "sim: %d seed runs, %d crash points, %d durability events enumerated, %d \
         failure(s) (%.2fs)@."
        s.Sim.sm_seed_runs s.Sim.sm_crash_points s.Sim.sm_events
        (List.length s.Sim.sm_failures)
        (Sys.time () -. t0);
      if s.Sim.sm_failures <> [] then begin
        List.iter (fun rp -> Format.fprintf ppf "%s@." (Sim.reproducer_line rp)) s.Sim.sm_failures;
        (* the first reproducer's protocol event window: how the
           interleaving went wrong, not just that it did *)
        (match s.Sim.sm_failures with
        | rp :: _ when rp.Sim.rp_event_dump <> [] ->
            Format.fprintf ppf "event window of the first failure:@.";
            List.iter (fun l -> Format.fprintf ppf "    %s@." l) rp.Sim.rp_event_dump
        | _ -> ());
        exit 1
      end

(* Machine-readable commit-path numbers (the tentpole PR's acceptance
   metrics): commits/step, log forces, batch-size histogram, restart redo
   pages with the cleaner on/off. Written to BENCH_PR2.json. *)
let run_json args =
  let out = match args with path :: _ -> path | [] -> "BENCH_PR2.json" in
  let open Experiments in
  Format.fprintf ppf "measuring commit path (16 committers, both modes)...@.";
  let pc = measure_commit_path ~commit_mode:Aries_db.Db.Per_commit ~label:"per_commit" in
  let gc =
    measure_commit_path
      ~commit_mode:(Aries_db.Db.Group Aries_txn.Group_commit.default_policy)
      ~label:"group_commit"
  in
  Format.fprintf ppf "measuring cleaner redo impact (on/off)...@.";
  let cl_off = measure_cleaner ~cleaner:None ~label:"off" in
  let cl_on =
    measure_cleaner
      ~cleaner:(Some { Aries_buffer.Cleaner.interval_steps = 4; batch_pages = 4 })
      ~label:"on"
  in
  let mode_json r =
    let hist =
      List.map (fun (size, n) -> Printf.sprintf "\"%d\": %d" size n) r.cp_hist
      |> String.concat ", "
    in
    Printf.sprintf
      "    { \"mode\": \"%s\", \"committers\": %d, \"committed_txns\": %d, \"steps\": %d,\n\
      \      \"commits_per_step\": %.4f, \"log_forces\": %d, \"forces_per_commit\": %.3f,\n\
      \      \"commit_batches\": %d, \"committers_covered\": %d, \"group_waits\": %d,\n\
      \      \"mean_batch_size\": %.2f, \"batch_histogram\": { %s } }"
      r.cp_label r.cp_committers r.cp_txns r.cp_steps
      (float_of_int r.cp_txns /. float_of_int (max 1 r.cp_steps))
      r.cp_forces
      (float_of_int r.cp_forces /. float_of_int (max 1 r.cp_txns))
      r.cp_batches r.cp_covered r.cp_waits
      (float_of_int r.cp_covered /. float_of_int (max 1 r.cp_batches))
      hist
  in
  let cleaner_json t =
    Printf.sprintf
      "    { \"cleaner\": \"%s\", \"dirty_pages_at_crash\": %d, \"cleaner_pages_written\": \
       %d,\n\
      \      \"redo_records_scanned\": %d, \"redo_pages_examined\": %d, \"redos_applied\": \
       %d }"
      t.cl_label t.cl_dirty_at_crash t.cl_pages_cleaned t.cl_redo_scanned t.cl_redo_pages
      t.cl_redos_applied
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"commit-path\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- json\",\n\
      \  \"force_reduction\": %.2f,\n\
      \  \"modes\": [\n%s,\n%s\n  ],\n\
      \  \"cleaner\": [\n%s,\n%s\n  ]\n\
       }\n"
      (float_of_int pc.cp_forces /. float_of_int (max 1 gc.cp_forces))
      (mode_json pc) (mode_json gc) (cleaner_json cl_off) (cleaner_json cl_on)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Format.fprintf ppf "%s" json;
  Format.fprintf ppf "wrote %s@." out

let run_experiments ids =
  List.iter
    (fun id ->
      match List.assoc_opt id Experiments.all with
      | Some f -> f ppf
      | None -> Format.fprintf ppf "unknown experiment %S@." id)
    ids

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Format.fprintf ppf "ARIES/IM experiment harness (see DESIGN.md, EXPERIMENTS.md)@.";
  (match args with
  | [] ->
      run_experiments (List.map fst Experiments.all);
      Timing.run_all ppf
  | [ "quick" ] -> run_experiments (List.map fst Experiments.all)
  | [ "timing" ] -> Timing.run_all ppf
  | "sim" :: rest -> run_sim rest
  | "json" :: rest -> run_json rest
  | ids -> run_experiments ids);
  Format.fprintf ppf "@.done.@."
