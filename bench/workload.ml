(* Shared helpers for the experiment harness. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db
module Table = Aries_db.Table

let rid i = { Ids.rid_page = 900 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?(page_size = 384) ?(unique = true) ?config () =
  let db = Db.create ~page_size ?config () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create ?config db.Db.benv txn ~name:"bench" ~unique))
  in
  (db, tree)

let seed_keys db tree lo hi =
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = lo to hi do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done))

let protocols =
  [ Protocol.Data_only; Protocol.Index_specific; Protocol.Kvl; Protocol.System_r; Protocol.Mvcc ]

let config_of locking = { Btree.default_config with Btree.locking }

(* run a thunk and return the named-counter deltas it produced *)
let measured f =
  let s = Stats.create () in
  let x = Stats.with_sink s f in
  (x, s)

let section ppf title =
  Format.fprintf ppf "@.=== %s ===@." title

let kv ppf k fmt = Format.fprintf ppf ("  %-46s " ^^ fmt ^^ "@.") k

let table_row ppf cols widths =
  List.iteri
    (fun i c -> Format.fprintf ppf "%-*s " (try List.nth widths i with _ -> 12) c)
    cols;
  Format.fprintf ppf "@."
