(* The per-figure experiments (E1-E11) and the quantitative claims
   (Q1-Q6). Each prints the evidence the paper's figure or claim predicts;
   EXPERIMENTS.md records expected-vs-measured. The assertions here mirror
   test/test_scenarios.ml — the harness narrates, the tests enforce. *)

open Aries_util
open Workload
module Ixlog = Aries_btree.Ixlog
module Key = Aries_page.Key
module Lockmgr = Aries_lock.Lockmgr
module Bufpool = Aries_buffer.Bufpool
module Restart = Aries_recovery.Restart
module Media = Aries_recovery.Media
module Disk = Aries_page.Disk
module Page = Aries_page.Page

let records_after db from =
  List.filter
    (fun r -> Lsn.( < ) from r.Logrec.lsn)
    (Logmgr.records_between db.Db.wal Lsn.nil Lsn.nil)

(* ------------------------------------------------------------------ *)

let e1 ppf =
  section ppf "E1 (Figure 1): logical undo after an intervening page split";
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  let k8 = "key99999" in
  Db.run_exn db (fun () ->
      let t1 = Txnmgr.begin_txn db.Db.mgr in
      Btree.insert tree t1 ~value:k8 ~rid:(rid 999);
      let p1 = Btree.locate_leaf tree k8 in
      Db.with_txn db (fun t2 ->
          let i = ref 10 in
          while Btree.locate_leaf tree k8 = p1 do
            Btree.insert tree t2 ~value:(v !i) ~rid:(rid !i);
            incr i
          done);
      let p2 = Btree.locate_leaf tree k8 in
      kv ppf "T1 inserted K8 into page" "P%d" p1;
      kv ppf "T2's committed split moved K8 to page" "P%d" p2;
      let mark = Logmgr.last_lsn db.Db.wal in
      let (), s = measured (fun () -> Txnmgr.rollback db.Db.mgr t1) in
      let clr =
        List.find
          (fun r -> r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = Ixlog.rm_id)
          (records_after db mark)
      in
      kv ppf "T1's rollback compensated on page" "P%d (logical undos: %d)" clr.Logrec.page
        (Stats.get s Stats.logical_undos);
      kv ppf "paper predicts: CLR page <> original page" "%s"
        (if clr.Logrec.page = p2 && p1 <> p2 then "CONFIRMED" else "VIOLATED"));
  Btree.check_invariants tree

let e2 ppf =
  section ppf "E2 (Figure 2): the locking summary table, measured";
  Format.fprintf ppf "  %-16s %-28s %-28s@." "operation" "next key" "current key";
  let run_op locking name f expect_events =
    let cfg = config_of locking in
    let db, tree = fresh ~config:cfg () in
    seed_keys db tree 0 19;
    let events = ref [] in
    Btree.set_trace db.Db.benv
      (Some
         (function
           | Btree.Ev_lock (n, m, d, (`Cond_ok | `Uncond)) -> events := (n, m, d) :: !events
           | _ -> ()));
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> f tree txn));
    Btree.set_trace db.Db.benv None;
    ignore expect_events;
    let show =
      List.rev_map (fun (_, m, d) -> Printf.sprintf "%s %s" m d) !events |> String.concat " + "
    in
    Format.fprintf ppf "  [%s] %-12s locks: %s@." (Protocol.locking_to_string locking) name show
  in
  List.iter
    (fun locking ->
      run_op locking "fetch" (fun tree txn -> ignore (Btree.fetch tree txn (v 5))) [];
      run_op locking "insert"
        (fun tree txn -> Btree.insert tree txn ~value:"key00005a" ~rid:(rid 500))
        [];
      run_op locking "delete" (fun tree txn -> Btree.delete tree txn ~value:(v 10) ~rid:(rid 10)) [])
    [ Protocol.Data_only; Protocol.Index_specific ];
  Format.fprintf ppf
    "  Figure 2 predicts: insert = next-key X instant (+ current X commit if@.";
  Format.fprintf ppf
    "  index-specific); delete = next-key X commit (+ current X instant); fetch =@.";
  Format.fprintf ppf "  current-key S commit.@."

let e3 ppf =
  section ppf "E3 (Figure 3): insert vs in-progress SMO";
  let db, tree = fresh () in
  seed_keys db tree 0 19;
  let cv = Sched.Condvar.create "pause" in
  let paused = ref false in
  Btree.set_smo_pause db.Db.benv
    (Some
       (fun () ->
         if not !paused then begin
           paused := true;
           Sched.Condvar.wait cv
         end));
  let t2_started = ref false and t2_done = ref false and blocked = ref false in
  let r =
    Db.run db (fun () ->
        ignore
          (Sched.spawn (fun () ->
               Db.with_txn db (fun txn ->
                   let i = ref 100 in
                   while not !paused do
                     Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
                     incr i
                   done)));
        ignore
          (Sched.spawn (fun () ->
               while not !paused do
                 Sched.yield ()
               done;
               t2_started := true;
               Db.with_txn db (fun txn -> Btree.insert tree txn ~value:"key99998" ~rid:(rid 77));
               t2_done := true));
        ignore
          (Sched.spawn (fun () ->
               while not !t2_started do
                 Sched.yield ()
               done;
               for _ = 1 to 10 do
                 Sched.yield ()
               done;
               blocked := not !t2_done;
               Sched.Condvar.signal cv)))
  in
  Btree.set_smo_pause db.Db.benv None;
  kv ppf "T2's insert blocked while T1's SMO was incomplete" "%b" !blocked;
  kv ppf "T2's insert completed after the SMO finished" "%b" !t2_done;
  kv ppf "schedule ran to completion" "%b" (r.Sched.outcome = Sched.Completed);
  Btree.check_invariants tree;
  kv ppf "tree invariants" "%s" "hold"

let e4 ppf =
  section ppf "E4 (Figure 4): traversal latch coupling";
  let db, tree = fresh () in
  seed_keys db tree 0 199;
  let held = ref 0 and max_held = ref 0 and acquires = ref 0 in
  Btree.set_trace db.Db.benv
    (Some
       (function
         | Btree.Ev_latch (_, _, `Acquire) ->
             incr held;
             incr acquires;
             if !held > !max_held then max_held := !held
         | Btree.Ev_latch (_, _, `Release) -> decr held
         | _ -> ()));
  Db.run_exn db (fun () -> Db.with_txn db (fun txn -> ignore (Btree.fetch tree txn (v 150))));
  Btree.set_trace db.Db.benv None;
  kv ppf "tree height" "%d" (Btree.height tree);
  kv ppf "page latches acquired by one fetch" "%d" !acquires;
  kv ppf "max latches held simultaneously" "%d (paper: <= 2)" !max_held;
  kv ppf "latches leaked" "%d" !held

let e5 ppf =
  section ppf "E5 (Figure 5): fetch's conditional-lock / unlatch / wait dance";
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  let cond_fail = ref 0 and uncond = ref 0 in
  Btree.set_trace db.Db.benv
    (Some
       (function
         | Btree.Ev_lock (_, _, _, `Cond_fail) -> incr cond_fail
         | Btree.Ev_lock (_, _, _, `Uncond) -> incr uncond
         | _ -> ()));
  let fetched = ref None in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                Btree.delete tree t1 ~value:(v 5) ~rid:(rid 5);
                for _ = 1 to 12 do
                  Sched.yield ()
                done;
                Txnmgr.rollback db.Db.mgr t1));
         ignore
           (Sched.spawn (fun () ->
                Sched.yield ();
                Db.with_txn db (fun t2 -> fetched := Btree.fetch tree t2 (v 5))))));
  Btree.set_trace db.Db.benv None;
  kv ppf "conditional lock denials observed" "%d" !cond_fail;
  kv ppf "unconditional (latches released) waits" "%d" !uncond;
  kv ppf "fetch saw the rolled-back deleter's key (RR)" "%b"
    (match !fetched with Some k -> String.equal k.Key.value (v 5) | None -> false)

let e7 ppf =
  section ppf "E7 (Figure 7): Delete_Bit and the boundary-key POSC rule";
  let db, tree = fresh () in
  seed_keys db tree 0 199;
  let leaves = Btree.leaf_pids tree in
  let second = List.nth leaves 1 in
  let on_leaf =
    List.filter (fun (value, _) -> Btree.locate_leaf tree value = second) (Btree.to_list tree)
  in
  let mid_value, mid_rid = List.nth on_leaf (List.length on_leaf / 2) in
  let bound_value, bound_rid = List.hd on_leaf in
  let delete_marks value r =
    let mark = Logmgr.last_lsn db.Db.wal in
    let tree_latched = ref false in
    Btree.set_trace db.Db.benv
      (Some
         (function Btree.Ev_tree_latch (`S, `Acquire) -> tree_latched := true | _ -> ()));
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Btree.delete tree txn ~value ~rid:r));
    Btree.set_trace db.Db.benv None;
    let marked =
      List.exists
        (fun rc ->
          rc.Logrec.kind = Logrec.Update && rc.Logrec.rm_id = Ixlog.rm_id
          &&
          match Ixlog.decode ~op:rc.Logrec.op rc.Logrec.body with
          | Ixlog.Delete_key { mark_delete_bit; _ } -> mark_delete_bit
          | _ -> false)
        (records_after db mark)
    in
    (marked, !tree_latched)
  in
  let marked, latched = delete_marks mid_value mid_rid in
  kv ppf "non-boundary delete: Delete_Bit set / tree latch" "%b / %b" marked latched;
  let marked, latched = delete_marks bound_value bound_rid in
  kv ppf "boundary delete:     Delete_Bit set / tree latch" "%b / %b" marked latched;
  kv ppf "paper predicts" "%s" "true/false then false/true"

let e9 ppf =
  section ppf "E9 (Figures 8-9): page-split log record sequence";
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          let i = ref 10 in
          while List.length (Btree.leaf_pids tree) = 1 do
            Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
            incr i
          done));
  let all = Logmgr.records_between db.Db.wal Lsn.nil Lsn.nil in
  let names =
    List.filter_map
      (fun r ->
        if r.Logrec.rm_id = Ixlog.rm_id && r.Logrec.kind = Logrec.Update then
          Some (Ixlog.op_name r.Logrec.op)
        else if r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = 0 then Some "dummy-CLR"
        else None)
      all
  in
  (* print the window around the split: from the adjacent
     (format_leaf, leaf_truncate) pair through the pending insert *)
  let rec around = function
    | "format_leaf" :: ("leaf_truncate" :: _ as rest) -> "format_leaf" :: around_tail rest
    | _ :: rest -> around rest
    | [] -> []
  and around_tail = function
    | "insert_key" :: _ -> [ "insert_key            <- the pending insert, after the SMO" ]
    | x :: rest -> x :: around_tail rest
    | [] -> []
  in
  Format.fprintf ppf "  log sequence around the split:@.";
  List.iter (fun n -> Format.fprintf ppf "    %s@." n) (around names);
  Format.fprintf ppf
    "  Figure 9 predicts: split records, then the dummy CLR closing the nested@.";
  Format.fprintf ppf "  top action, and only then the insert that caused the split.@."

let e10 ppf =
  section ppf "E10 (Figure 10): page-delete log record sequence";
  let db, tree = fresh () in
  seed_keys db tree 0 199;
  let second = List.nth (Btree.leaf_pids tree) 1 in
  let on_leaf =
    List.filter (fun (value, _) -> Btree.locate_leaf tree value = second) (Btree.to_list tree)
  in
  let mark = Logmgr.last_lsn db.Db.wal in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          List.iter (fun (value, r) -> Btree.delete tree txn ~value ~rid:r) on_leaf));
  let recs = records_after db mark in
  let key_delete =
    List.filter
      (fun r ->
        r.Logrec.kind = Logrec.Update && r.Logrec.rm_id = Ixlog.rm_id && r.Logrec.page = second
        && match Ixlog.decode ~op:r.Logrec.op r.Logrec.body with
           | Ixlog.Delete_key _ -> true
           | _ -> false)
      recs
    |> List.rev |> List.hd
  in
  let dummy =
    List.find
      (fun r ->
        r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = 0
        && Lsn.( < ) key_delete.Logrec.lsn r.Logrec.lsn)
      recs
  in
  kv ppf "key-delete record LSN" "%d" key_delete.Logrec.lsn;
  kv ppf "page-delete NTA dummy CLR UndoNxtLSN" "%d" dummy.Logrec.undo_nxt_lsn;
  kv ppf "dummy CLR points exactly at the key delete (Fig 10)" "%s"
    (if dummy.Logrec.undo_nxt_lsn = key_delete.Logrec.lsn then "CONFIRMED" else "VIOLATED");
  kv ppf "victim page removed from the leaf chain" "%b"
    (not (List.mem second (Btree.leaf_pids tree)))

let e11 ppf =
  section ppf "E11 (Figure 11): the Delete_Bit protects the region of structural inconsistency";
  let run ~delete_bit =
    let cfg = { Btree.default_config with Btree.delete_bit_enabled = delete_bit } in
    let db, tree = fresh ~config:cfg () in
    seed_keys db tree 0 199;
    let free_of pid = Bufpool.with_fix db.Db.pool pid (fun p -> Page.free_space p) in
    let base = "key00042" in
    let entry_len = String.length base + 3 in
    let cost = entry_len + 10 in
    let j = ref 0 in
    while free_of (Btree.locate_leaf tree base) >= cost do
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn ->
              Btree.insert tree txn
                ~value:(Printf.sprintf "%sf%02d" base !j)
                ~rid:(rid (300 + !j))));
      incr j
    done;
    let target_leaf = Btree.locate_leaf tree base in
    let on_leaf =
      List.filter
        (fun (value, _) ->
          Btree.locate_leaf tree value = target_leaf && String.length value = entry_len)
        (Btree.to_list tree)
    in
    let del_value, del_rid = List.nth on_leaf (List.length on_leaf / 2) in
    let consumer = String.sub del_value 0 (entry_len - 1) ^ "z" in
    let cv = Sched.Condvar.create "e11" in
    let paused = ref false and t2_done = ref false and blocked = ref false in
    Btree.set_smo_pause db.Db.benv
      (Some
         (fun () ->
           if not !paused then begin
             paused := true;
             Logmgr.flush db.Db.wal;
             Sched.Condvar.wait cv
           end));
    ignore
      (Db.run db (fun () ->
           ignore
             (Sched.spawn (fun () ->
                  Db.with_txn db (fun txn ->
                      let i = ref 5000 in
                      while not !paused do
                        Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
                        incr i
                      done)));
           ignore
             (Sched.spawn (fun () ->
                  while not !paused do
                    Sched.yield ()
                  done;
                  let t1 = Txnmgr.begin_txn db.Db.mgr in
                  Btree.delete tree t1 ~value:del_value ~rid:del_rid;
                  Logmgr.flush db.Db.wal;
                  ignore
                    (Sched.spawn (fun () ->
                         let t2 = Txnmgr.begin_txn db.Db.mgr in
                         Btree.insert tree t2 ~value:consumer ~rid:(rid 77);
                         Txnmgr.commit db.Db.mgr t2;
                         t2_done := true));
                  ignore
                    (Sched.spawn (fun () ->
                         for _ = 1 to 20 do
                           Sched.yield ()
                         done;
                         blocked := not !t2_done))))));
    Btree.set_smo_pause db.Db.benv None;
    let db' = Db.crash db in
    let report, s = measured (fun () -> Db.run_exn db' (fun () -> Db.restart db')) in
    ignore report;
    (!blocked, !t2_done, Stats.get s Stats.logical_undos, Stats.get s Stats.page_oriented_undos)
  in
  let blocked, consumed, logical, pageor = run ~delete_bit:true in
  kv ppf "[bit ON ] consumer blocked / consumed in ROSI" "%b / %b" blocked consumed;
  kv ppf "[bit ON ] restart undo: logical / page-oriented" "%d / %d" logical pageor;
  let blocked, consumed, logical, pageor = run ~delete_bit:false in
  kv ppf "[bit OFF] consumer blocked / consumed in ROSI" "%b / %b" blocked consumed;
  kv ppf "[bit OFF] restart undo: logical / page-oriented" "%d / %d" logical pageor;
  Format.fprintf ppf
    "  With the bit, the space consumer waits for the POSC and the uncommitted@.";
  Format.fprintf ppf
    "  delete's restart undo stays page-oriented; the ablation admits the Fig-11@.";
  Format.fprintf ppf "  hazard (logical undo inside a region of structural inconsistency).@."

(* ------------------------------------------------------------------ *)
(* Q1: locks acquired per operation, by protocol (through the Table layer,
   so record-manager locks are included). *)

let q1 ppf =
  section ppf "Q1: lock requests per operation (1 record, 2 indexes)";
  let specs =
    [
      { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun r -> r.(0)) };
      { Table.sp_name = "cat"; sp_unique = false; sp_key = (fun r -> r.(1)) };
    ]
  in
  Format.fprintf ppf "  %-16s %8s %8s %8s %8s@." "protocol" "fetch" "insert" "delete" "scan25";
  List.iter
    (fun locking ->
      let config = config_of locking in
      let db = Db.create ~config () in
      let tbl =
        Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs))
      in
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn ->
              for i = 0 to 199 do
                ignore
                  (Table.insert tbl txn
                     [| Printf.sprintf "item%04d" i; Printf.sprintf "cat%d" (i mod 8) |])
              done));
      let count f =
        let (), s = measured (fun () -> Db.run_exn db (fun () -> Db.with_txn db f)) in
        Stats.get s Stats.lock_requests
      in
      let f = count (fun txn -> ignore (Table.fetch tbl txn ~index:"pk" "item0100")) in
      let i = count (fun txn -> ignore (Table.insert tbl txn [| "item9000"; "cat1" |])) in
      let d =
        count (fun txn ->
            match Table.fetch tbl txn ~index:"pk" "item0050" with
            | Some (r, _) -> Table.delete tbl txn r
            | None -> ())
      in
      let s =
        count (fun txn -> ignore (Table.scan tbl txn ~index:"cat" "cat3" ~stop:("cat3", `Le) ()))
      in
      Format.fprintf ppf "  %-16s %8d %8d %8d %8d@." (Protocol.locking_to_string locking) f i d s)
    protocols;
  Format.fprintf ppf
    "  Paper (§1,§5): ARIES/IM data-only locking acquires the minimal number of@.";
  Format.fprintf ppf "  locks; System R-style locking acquires the most.@."

(* Q2: lock waits under contention, by protocol *)

let q2 ppf =
  section ppf "Q2: concurrency — lock waits and deadlocks under contention";
  Format.fprintf ppf "  %-16s %10s %10s %10s@." "protocol" "committed" "lock-waits" "deadlocks";
  List.iter
    (fun locking ->
      let config = config_of locking in
      (* a nonunique index over a handful of hot key values: readers fetch a
         value while writers add fresh duplicates of it. Under key locking
         (IM) the reader's lock covers one key; under value locking (KVL /
         System R) it covers every duplicate, so writers conflict. *)
      let db, tree = fresh ~page_size:512 ~unique:false ~config () in
      let hot = 8 in
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn ->
              for i = 0 to 79 do
                Btree.insert tree txn ~value:(v (i mod hot)) ~rid:(rid i)
              done));
      let committed = ref 0 in
      let next_rid = ref 1000 in
      let (), s =
        measured (fun () ->
            ignore
              (Db.run db ~policy:(Sched.Random 11) ~yield_probability:0.2 (fun () ->
                   for f = 0 to 5 do
                     let rng = Rng.create (100 + f) in
                     ignore
                       (Sched.spawn (fun () ->
                            for _ = 1 to 25 do
                              let t = Txnmgr.begin_txn db.Db.mgr in
                              match
                                for _ = 1 to 3 do
                                  let value = v (Rng.int rng hot) in
                                  if Rng.bool rng then
                                    (* reader *)
                                    ignore (Btree.fetch tree t value)
                                  else begin
                                    (* writer: fresh duplicate of a hot value *)
                                    incr next_rid;
                                    let r = rid !next_rid in
                                    Txnmgr.lock db.Db.mgr t (Lockmgr.Rid r) Lockmgr.X
                                      Lockmgr.Commit;
                                    Btree.insert tree t ~value ~rid:r
                                  end
                                done
                              with
                              | () ->
                                  Txnmgr.commit db.Db.mgr t;
                                  incr committed
                              | exception Txnmgr.Aborted _ -> ()
                            done))
                   done)))
      in
      Format.fprintf ppf "  %-16s %10d %10d %10d@."
        (Protocol.locking_to_string locking)
        !committed
        (Stats.get s Stats.lock_waits)
        (Stats.get s Stats.lock_deadlocks))
    protocols;
  Format.fprintf ppf
    "  Paper (§1): more permitted interleavings under ARIES/IM; value-level and@.";
  Format.fprintf ppf "  commit-duration locking produce more waits on the same workload.@."

(* Q3: restart recovery is page-oriented *)

let q3 ppf =
  section ppf "Q3: restart recovery — page-oriented redo, page-oriented undo when possible";
  let db, tree = fresh ~page_size:384 () in
  Bufpool.set_steal_hook db.Db.pool ~seed:3 ~probability:0.15;
  (* even keys committed; the loser scatters inserts (odd keys) and deletes
     (existing evens) across the tree — the typical case the paper argues
     stays page-oriented *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 299 do
            Btree.insert tree txn ~value:(v (2 * i)) ~rid:(rid (2 * i))
          done));
  Bufpool.flush_all db.Db.pool;
  Db.checkpoint db;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 99 do
            Btree.insert tree txn ~value:(v ((14 * i mod 600) + 1)) ~rid:(rid ((14 * i mod 600) + 1))
          done));
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         (* scattered fresh inserts: each sorts right after an existing even
            key, so pages rarely split and undo stays page-oriented *)
         for i = 0 to 49 do
           let k = 2 * ((13 * i) mod 300) in
           Btree.insert tree t ~value:(v k ^ "a") ~rid:(rid (700 + i))
         done;
         for i = 0 to 49 do
           let k = 2 * ((11 * i) mod 300) in
           Btree.delete tree t ~value:(v k) ~rid:(rid k)
         done;
         Logmgr.flush db.Db.wal));
  let db' = Db.crash db in
  let report, s = measured (fun () -> Db.run_exn db' (fun () -> Db.restart db')) in
  kv ppf "log records analyzed" "%d" report.Restart.rp_records_analyzed;
  kv ppf "redo: records scanned / applied / skipped" "%d / %d / %d"
    report.Restart.rp_records_redo_scanned report.Restart.rp_redos_applied
    report.Restart.rp_redos_skipped;
  kv ppf "tree traversals during redo" "%d (paper: always 0)" report.Restart.rp_redo_traversals;
  kv ppf "undo: records processed" "%d" report.Restart.rp_undo_records;
  kv ppf "undo: page-oriented / logical" "%d / %d"
    (Stats.get s Stats.page_oriented_undos)
    (Stats.get s Stats.logical_undos);
  let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
  Btree.check_invariants tree';
  kv ppf "recovered keys" "%d (expected 400)" (List.length (Btree.to_list tree'))

(* Q4: rolling-back transactions never deadlock *)

let q4 ppf =
  section ppf "Q4: rolling-back transactions never deadlock";
  let db, tree = fresh ~page_size:384 () in
  seed_keys db tree 0 99;
  let rng = Rng.create 99 in
  let deadlocks = ref 0 and committed = ref 0 and rolled_back = ref 0 in
  let (), s =
    measured (fun () ->
        ignore
          (Db.run db ~policy:(Sched.Random 99) ~yield_probability:0.2 (fun () ->
               for _f = 1 to 6 do
                 ignore
                   (Sched.spawn (fun () ->
                        for _ = 1 to 20 do
                          let t = Txnmgr.begin_txn db.Db.mgr in
                          match
                            for _ = 1 to 1 + Rng.int rng 4 do
                              let i = Rng.int rng 400 in
                              Txnmgr.lock db.Db.mgr t (Lockmgr.Rid (rid i)) Lockmgr.X
                                Lockmgr.Commit;
                              let value = v i in
                              try Btree.insert tree t ~value ~rid:(rid i)
                              with Btree.Unique_violation _ -> (
                                try Btree.delete tree t ~value ~rid:(rid i)
                                with Btree.Key_not_found _ -> ())
                            done
                          with
                          | () ->
                              if Rng.int rng 3 = 0 then begin
                                Txnmgr.rollback db.Db.mgr t;
                                incr rolled_back
                              end
                              else begin
                                Txnmgr.commit db.Db.mgr t;
                                incr committed
                              end
                          | exception Txnmgr.Aborted _ -> incr deadlocks
                        done))
               done)))
  in
  kv ppf "transactions committed / rolled back / deadlock-aborted" "%d / %d / %d" !committed
    !rolled_back !deadlocks;
  kv ppf "deadlock victims that were rolling back" "%d (by construction: %s)" 0
    "rollbacks request no locks and are exempt from victim selection";
  kv ppf "lock waits total" "%d" (Stats.get s Stats.lock_waits);
  Btree.check_invariants tree;
  kv ppf "tree invariants after the storm" "%s" "hold"

(* Q5: SMOs concurrent with other operations vs a serialize-everything
   strawman *)

let q5 ppf =
  section ppf "Q5: operations concurrent with SMOs vs tree-latch-everything strawman";
  let run ~strawman =
    let config = { Btree.default_config with Btree.serialize_smo_ops = strawman } in
    let db, tree = fresh ~page_size:384 ~config () in
    seed_keys db tree 0 49;
    let completed = ref 0 in
    let steps = 40_000 in
    ignore
      (Db.run db ~policy:(Sched.Random 5) ~yield_probability:0.3 ~max_steps:steps (fun () ->
           (* one writer causing a steady stream of splits *)
           ignore
             (Sched.spawn (fun () ->
                  let i = ref 100 in
                  while true do
                    Db.with_txn db (fun txn ->
                        for _ = 1 to 5 do
                          Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
                          incr i
                        done);
                    incr completed;
                    Sched.yield ()
                  done));
           (* readers *)
           for f = 0 to 3 do
             let rng = Rng.create (50 + f) in
             ignore
               (Sched.spawn (fun () ->
                    while true do
                      Db.with_txn db (fun txn ->
                          ignore (Btree.fetch tree txn (v (Rng.int rng 100))));
                      incr completed;
                      Sched.yield ()
                    done))
           done));
    !completed
  in
  let normal = run ~strawman:false in
  let strawman = run ~strawman:true in
  kv ppf "ops completed in a fixed step budget (ARIES/IM)" "%d" normal;
  kv ppf "ops completed with every op serialized on the tree latch" "%d" strawman;
  kv ppf "speedup from letting ops run during SMOs" "%.2fx"
    (float_of_int normal /. float_of_int (max 1 strawman))

(* Q7 (§5 extension): concurrent SMOs via the tree lock *)

let q7 ppf =
  section ppf "Q7 (§5): concurrent SMOs — tree lock (IX/X) vs serialized tree latch";
  let run ~concurrent =
    let config = { Btree.default_config with Btree.concurrent_smos = concurrent } in
    let db, tree = fresh ~page_size:512 ~config () in
    seed_keys db tree 0 49;
    let committed = ref 0 in
    let steps = 60_000 in
    ignore
      (Db.run db ~policy:(Sched.Random 9) ~yield_probability:0.3 ~max_steps:steps (fun () ->
           (* several writers, each driving splits in its own key region *)
           for f = 0 to 3 do
             ignore
               (Sched.spawn (fun () ->
                    let i = ref (10_000 * (f + 1)) in
                    while true do
                      (match
                         Db.with_txn db (fun txn ->
                             for _ = 1 to 4 do
                               Btree.insert tree txn ~value:(v !i) ~rid:(rid !i);
                               incr i
                             done)
                       with
                      | () -> incr committed
                      | exception Txnmgr.Aborted _ -> ());
                      Sched.yield ()
                    done))
           done));
    Btree.check_invariants tree;
    !committed
  in
  let serialized = run ~concurrent:false in
  let concurrent = run ~concurrent:true in
  kv ppf "txns committed, SMOs serialized on the tree latch" "%d" serialized;
  kv ppf "txns committed, concurrent SMOs (tree lock, IX leaf-level)" "%d" concurrent;
  kv ppf "throughput ratio" "%.2fx" (float_of_int concurrent /. float_of_int (max 1 serialized));
  Format.fprintf ppf
    "  §5: \"Concurrent SMOs can be easily permitted by changing the tree latch@.";
  Format.fprintf ppf
    "  into a lock\" — leaf-level SMOs take IX; nonleaf-level SMOs upgrade to X@.";
  Format.fprintf ppf "  (upgrade deadlocks abort the transaction, as the paper predicts).@."

(* Q8 (ablation, Figure 8's "optional" step): cost of not resetting SM bits *)

let q8 ppf =
  section ppf "Q8 (ablation): Figure 8's optional SM_Bit reset";
  let run ~reset =
    let config = { Btree.default_config with Btree.reset_sm_bits = reset } in
    let db, tree = fresh ~page_size:384 ~config () in
    seed_keys db tree 0 499;
    (* after plenty of splits, measure the tree-latch traffic of reads *)
    let (), s =
      measured (fun () ->
          Db.run_exn db (fun () ->
              Db.with_txn db (fun txn ->
                  for i = 0 to 499 do
                    ignore (Btree.fetch tree txn (v i))
                  done)))
    in
    (Stats.get s Stats.tree_latch_acquires, Stats.get s Stats.tree_traversals)
  in
  let latches_on, traversals_on = run ~reset:true in
  let latches_off, traversals_off = run ~reset:false in
  kv ppf "[reset ON ] tree-latch acquisitions / traversals for 500 fetches" "%d / %d" latches_on
    traversals_on;
  kv ppf "[reset OFF] tree-latch acquisitions / traversals for 500 fetches" "%d / %d" latches_off
    traversals_off;
  Format.fprintf ppf
    "  Stale bits force traversers to touch the tree latch (and re-descend) on@.";
  Format.fprintf ppf
    "  every rightmost route through a once-split page: the reset is optional@.";
  Format.fprintf ppf "  for correctness but pays for itself immediately.@."

(* Q6: media recovery *)

let q6 ppf =
  section ppf "Q6: page-oriented media recovery for indexes";
  let db, tree = fresh () in
  seed_keys db tree 0 149;
  let dump = Media.take_dump db.Db.mgr db.Db.pool in
  seed_keys db tree 150 299;
  Bufpool.flush_all db.Db.pool;
  let victim = Btree.locate_leaf tree (v 200) in
  let before = Disk.read db.Db.disk victim in
  Disk.corrupt_drop db.Db.disk victim;
  Bufpool.drop db.Db.pool victim;
  let applied = Db.run_exn db (fun () -> Media.recover_page db.Db.mgr db.Db.pool dump victim) in
  let after = Disk.read db.Db.disk victim in
  kv ppf "dump taken after" "%d keys; %d more committed afterwards" 150 150;
  kv ppf "lost page" "%d" victim;
  kv ppf "log records replayed onto the dump image" "%d" applied;
  kv ppf "recovered page byte-identical to the lost one" "%b"
    (match (before, after) with Some b, Some a -> Page.equal b a | _ -> false);
  Btree.check_invariants tree;
  kv ppf "no tree traversals involved" "%s" "recovery replayed only that page's records"

(* ------------------------------------------------------------------ *)
(* Q9: the commit path — batched group-commit forces vs per-commit
   forcing, and the background page cleaner's effect on restart redo.
   The measurement functions are shared with [bench/main.exe -- json],
   which emits the same numbers as BENCH_PR2.json. *)

module Group_commit = Aries_txn.Group_commit
module Cleaner = Aries_buffer.Cleaner

type commit_path = {
  cp_label : string;
  cp_committers : int;
  cp_txns : int;  (* committed transactions *)
  cp_steps : int;  (* scheduler slices the run took *)
  cp_forces : int;  (* synchronous log forces, all causes *)
  cp_batches : int;  (* batched forces issued by the daemon *)
  cp_covered : int;  (* committers covered by batched forces *)
  cp_waits : int;  (* commits that enqueued and suspended *)
  cp_hist : (int * int) list;  (* batch size -> number of batches *)
}

let batch_hist s =
  let prefix = "commit.batch_hist." in
  let plen = String.length prefix in
  List.filter_map
    (fun (name, n) ->
      if String.length name > plen && String.sub name 0 plen = prefix then
        Option.map
          (fun k -> (k, n))
          (int_of_string_opt (String.sub name plen (String.length name - plen)))
      else None)
    (Stats.to_alist s)

(* 16 committers x 12 small transactions under a randomized overlapping
   schedule: the per-commit run pays one synchronous force per commit, the
   group run amortizes each force over the daemon's batch. *)
let measure_commit_path ~commit_mode ~label =
  let db = Db.create ~page_size:512 ~commit_mode () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn ->
            Btree.create db.Db.benv txn ~name:"commitpath" ~unique:false))
  in
  let committers = 16 and txns_per_fiber = 12 in
  let committed = ref 0 in
  let steps = ref 0 in
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      let r =
        Db.run db ~policy:(Sched.Random 42) ~yield_probability:0.2 (fun () ->
            for f = 0 to committers - 1 do
              ignore
                (Sched.spawn
                   ~name:(Printf.sprintf "commit-%02d" f)
                   (fun () ->
                     for t = 1 to txns_per_fiber do
                       let txn = Txnmgr.begin_txn db.Db.mgr in
                       let base = (f * 1_000) + (t * 3) in
                       match
                         Btree.insert tree txn
                           ~value:(Printf.sprintf "f%02d-%04d" f base)
                           ~rid:(rid base);
                         Btree.insert tree txn
                           ~value:(Printf.sprintf "f%02d-%04d" f (base + 1))
                           ~rid:(rid (base + 1))
                       with
                       | () ->
                           Txnmgr.commit db.Db.mgr txn;
                           incr committed
                       | exception Txnmgr.Aborted _ -> ()
                     done))
            done)
      in
      steps := r.Sched.steps);
  {
    cp_label = label;
    cp_committers = committers;
    cp_txns = !committed;
    cp_steps = !steps;
    cp_forces = Stats.get s Stats.log_forces;
    cp_batches = Stats.get s Stats.commit_batches;
    cp_covered = Stats.get s Stats.commit_batch_size;
    cp_waits = Stats.get s Stats.commit_group_waits;
    cp_hist = batch_hist s;
  }

type cleaner_trial = {
  cl_label : string;
  cl_dirty_at_crash : int;  (* dirty-page table size when the run ended *)
  cl_pages_cleaned : int;  (* pages the cleaner trickled out *)
  cl_redo_scanned : int;  (* restart: log records the redo pass scanned *)
  cl_redo_pages : int;  (* restart: pages the redo pass examined *)
  cl_redos_applied : int;
}

(* The same sequential committed workload with the cleaner on or off, then
   checkpoint + crash + restart: the cleaner advances the recLSN horizon,
   so the redo scan shortens. *)
let measure_cleaner ~cleaner ~label =
  let db = Db.create ~page_size:384 ?cleaner () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn ->
            Btree.create db.Db.benv txn ~name:"cleanerpath" ~unique:false))
  in
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      Db.run_exn db (fun () ->
          for i = 1 to 150 do
            Db.with_txn db (fun txn -> Btree.insert tree txn ~value:(v i) ~rid:(rid i));
            (* give the cleaner daemon its slices between transactions *)
            Sched.yield ()
          done));
  let dirty = List.length (Bufpool.dirty_page_table db.Db.pool) in
  Db.checkpoint db;
  let db' = Db.crash db in
  let report, s' = measured (fun () -> Db.run_exn db' (fun () -> Db.restart db')) in
  {
    cl_label = label;
    cl_dirty_at_crash = dirty;
    cl_pages_cleaned = Stats.get s Stats.cleaner_pages_written;
    cl_redo_scanned = report.Restart.rp_records_redo_scanned;
    cl_redo_pages = Stats.get s' Stats.redo_pages_examined;
    cl_redos_applied = report.Restart.rp_redos_applied;
  }

let q9 ppf =
  section ppf "Q9: commit path — batched group commit vs per-commit forcing";
  let pc = measure_commit_path ~commit_mode:Db.Per_commit ~label:"per-commit" in
  let gc =
    measure_commit_path ~commit_mode:(Db.Group Group_commit.default_policy)
      ~label:"group-commit"
  in
  let per r = float_of_int r.cp_forces /. float_of_int (max 1 r.cp_txns) in
  kv ppf "committed txns (16 committers x 12)" "%d / %d (per-commit / group)" pc.cp_txns
    gc.cp_txns;
  kv ppf "[per-commit] log forces / forces per commit" "%d / %.2f" pc.cp_forces (per pc);
  kv ppf "[group     ] log forces / forces per commit" "%d / %.2f" gc.cp_forces (per gc);
  kv ppf "force reduction" "%.1fx (acceptance floor: 4x)"
    (float_of_int pc.cp_forces /. float_of_int (max 1 gc.cp_forces));
  kv ppf "batches / committers covered / waits" "%d / %d / %d" gc.cp_batches gc.cp_covered
    gc.cp_waits;
  kv ppf "mean batch size" "%.2f"
    (float_of_int gc.cp_covered /. float_of_int (max 1 gc.cp_batches));
  Format.fprintf ppf "  batch-size histogram (size x batches):@.";
  List.iter
    (fun (size, n) -> Format.fprintf ppf "    %2d x %d@." size n)
    gc.cp_hist;
  let off = measure_cleaner ~cleaner:None ~label:"off" in
  let on =
    measure_cleaner
      ~cleaner:(Some { Cleaner.interval_steps = 4; batch_pages = 4 })
      ~label:"on"
  in
  let line ppf t =
    kv ppf
      (Printf.sprintf "[cleaner %-3s] dirty at crash / redo scanned / pages / applied"
         t.cl_label)
      "%d / %d / %d / %d" t.cl_dirty_at_crash t.cl_redo_scanned t.cl_redo_pages
      t.cl_redos_applied
  in
  line ppf off;
  line ppf on;
  kv ppf "pages trickled by the cleaner" "%d" on.cl_pages_cleaned;
  Format.fprintf ppf
    "  Group commit batches N concurrent commit forces into ~1 (no-force, §1);@.";
  Format.fprintf ppf
    "  the cleaner advances the dirty-page recLSN horizon so restart redo@.";
  Format.fprintf ppf "  scans and examines less — without ever violating the WAL rule.@."

(* ------------------------------------------------------------------ *)

(* Q10: what does the protocol tracer cost? The same full simulation run
   (workload + invariants + oracle) under the three tracer modes: off (one
   flag test per emit site), record (ring buffer only), and check (ring +
   the online R1-R5 discipline checker — the dune-runtest default). The
   acceptance bound (checker-on <= 2x off) is enforced by
   test/test_trace.ml; this entry measures it and writes BENCH_PR3.json. *)
let q10 ppf =
  let module Trace = Aries_trace.Trace in
  let module Sim = Aries_sim.Sim in
  section ppf "Q10: protocol tracer overhead — off / ring-on / checker-on";
  let cfg = Aries_sim.Workload.default_cfg in
  let seeds = List.init 8 (fun i -> 40 + i) in
  let n = List.length seeds in
  let mode_label = function
    | Trace.Off -> "off"
    | Trace.Record -> "record"
    | Trace.Check -> "check"
  in
  let time_mode m =
    Trace.set_mode m;
    let best = ref infinity and events = ref 0 in
    for _ = 1 to 3 do
      let t0 = Sys.time () in
      let evs = ref 0 in
      List.iter
        (fun seed ->
          let r = Sim.run_one cfg ~seed in
          if r.Sim.rr_failures <> [] then
            failwith
              (Printf.sprintf "q10: seed %d failed with the tracer %s" seed (mode_label m));
          evs := !evs + Trace.event_count ())
        seeds;
      let dt = Sys.time () -. t0 in
      if dt < !best then begin
        best := dt;
        events := !evs
      end
    done;
    (!best, !events)
  in
  let saved = Trace.mode () in
  Fun.protect
    ~finally:(fun () -> Trace.set_mode saved)
    (fun () ->
      let t_off, _ = time_mode Trace.Off in
      let t_rec, ev_rec = time_mode Trace.Record in
      let t_chk, ev_chk = time_mode Trace.Check in
      let per t = t /. float_of_int n *. 1e3 in
      let ratio t = t /. Float.max t_off 1e-9 in
      kv ppf "sim runs per mode (x3, best total)" "%d" n;
      kv ppf "[off   ] total / per run" "%.4fs / %.3fms" t_off (per t_off);
      kv ppf "[record] total / per run / events per run" "%.4fs / %.3fms / %d (%.2fx off)"
        t_rec (per t_rec) (ev_rec / n) (ratio t_rec);
      kv ppf "[check ] total / per run / events per run" "%.4fs / %.3fms / %d (%.2fx off)"
        t_chk (per t_chk) (ev_chk / n) (ratio t_chk);
      kv ppf "acceptance (enforced by test/test_trace.ml)" "checker-on <= 2x off: %s"
        (if t_chk <= (2.0 *. t_off) +. 0.01 then "PASS" else "FAIL");
      let mode_json label t evs =
        Printf.sprintf
          "    { \"mode\": \"%s\", \"total_s\": %.6f, \"per_run_ms\": %.4f,\n\
          \      \"events_per_run\": %d, \"overhead_vs_off\": %.3f }"
          label t (per t) (evs / n) (ratio t)
      in
      let json =
        Printf.sprintf
          "{\n\
          \  \"bench\": \"tracer-overhead\",\n\
          \  \"generated_by\": \"dune exec bench/main.exe -- q10\",\n\
          \  \"runs_per_mode\": %d,\n\
          \  \"record_over_off\": %.3f,\n\
          \  \"check_over_off\": %.3f,\n\
          \  \"acceptance\": \"check_over_off <= 2.0 (test/test_trace.ml enforces)\",\n\
          \  \"modes\": [\n%s,\n%s,\n%s\n  ]\n\
           }\n"
          n (ratio t_rec) (ratio t_chk)
          (mode_json "off" t_off 0)
          (mode_json "record" t_rec ev_rec)
          (mode_json "check" t_chk ev_chk)
      in
      let oc = open_out "BENCH_PR3.json" in
      output_string oc json;
      close_out oc;
      kv ppf "wrote" "BENCH_PR3.json")

(* ------------------------------------------------------------------ *)

(* Q11: log lifecycle — the segmented WAL plus the fuzzy-checkpoint daemon.
   The same sustained committed workload runs twice: without the daemon the
   live log grows without bound; with the daemon (checkpoint + whole-segment
   truncation, stale dirty pages nudged to the cleaner) the live footprint
   plateaus at a few segments, and post-crash restart analysis is bounded by
   the records written since the last complete checkpoint. Writes
   BENCH_PR4.json. *)
let q11 ppf =
  let module Ckptd = Aries_recovery.Ckptd in
  let module Archive = Aries_recovery.Media.Archive in
  section ppf "Q11: log lifecycle — live-log plateau under the checkpoint daemon";
  let seg = 2048 in
  let batches = 24 and txns_per_batch = 4 and inserts_per_txn = 4 in
  let run_workload ~checkpoint =
    let db = Db.create ~page_size:384 ?checkpoint ~segment_size:seg () in
    let tree =
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"bench" ~unique:true))
    in
    let samples = ref [] in
    let n = ref 0 in
    let (), stats =
      measured (fun () ->
          Db.run_exn db (fun () ->
              for _b = 1 to batches do
                for _t = 1 to txns_per_batch do
                  Db.with_txn db (fun txn ->
                      for _i = 1 to inserts_per_txn do
                        incr n;
                        Btree.insert tree txn ~value:(v !n) ~rid:(rid !n)
                      done);
                  (* give the daemon a turn between transactions *)
                  Sched.yield ()
                done;
                samples := Logmgr.size_bytes db.Db.wal :: !samples
              done))
    in
    (db, tree, List.rev !samples, stats)
  in
  let ck_cfg = Some { Ckptd.every_steps = 8; nudge_pages = 4; truncate = true } in
  let db_off, tree_off, samples_off, _ = run_workload ~checkpoint:None in
  let db_on, tree_on, samples_on, stats_on = run_workload ~checkpoint:ck_cfg in
  let live db = Logmgr.size_bytes db.Db.wal in
  let committed = batches * txns_per_batch * inserts_per_txn in
  kv ppf "workload" "%d batches x %d txns x %d inserts (= %d keys), segment %dB" batches
    txns_per_batch inserts_per_txn committed seg;
  kv ppf "[no daemon] final live log / segments" "%dB / %d" (live db_off)
    (Logmgr.segment_count db_off.Db.wal);
  kv ppf "[daemon   ] final live log / segments / archived" "%dB / %d / %d" (live db_on)
    (Logmgr.segment_count db_on.Db.wal)
    (Archive.segment_count db_on.Db.archive);
  kv ppf "[daemon   ] rounds / checkpoints / nudges" "%d / %d / %d"
    (Stats.get stats_on Stats.ckptd_rounds)
    (Stats.get stats_on Stats.ckpt_taken)
    (Stats.get stats_on Stats.ckptd_nudges);
  kv ppf "[daemon   ] truncations / segments reclaimed" "%d / %d"
    (Stats.get stats_on Stats.log_truncations)
    (Stats.get stats_on Stats.log_segments_reclaimed);
  let peak l = List.fold_left max 0 l in
  kv ppf "live-log peak over the run (no daemon vs daemon)" "%dB vs %dB" (peak samples_off)
    (peak samples_on);
  let plateau_ok = 2 * live db_on < live db_off in
  kv ppf "acceptance: daemon footprint under half of unbounded" "%s"
    (if plateau_ok then "PASS" else "FAIL");
  (* post-crash analysis bound: records since the last complete checkpoint *)
  let since_ckpt = ref 0 in
  Logmgr.iter_from db_on.Db.wal (Logmgr.master db_on.Db.wal) (fun _ -> incr since_ckpt);
  let crash_report db =
    let db' = Db.crash db in
    (db', Db.run_exn db' (fun () -> Db.restart db'))
  in
  let db_off', rep_off = crash_report db_off in
  let db_on', rep_on = crash_report db_on in
  kv ppf "[no daemon] restart records analyzed" "%d" rep_off.Restart.rp_records_analyzed;
  kv ppf "[daemon   ] restart records analyzed / since last ckpt" "%d / %d"
    rep_on.Restart.rp_records_analyzed !since_ckpt;
  let bound_ok = rep_on.Restart.rp_records_analyzed <= !since_ckpt in
  kv ppf "acceptance: analysis <= records since last checkpoint" "%s"
    (if bound_ok then "PASS" else "FAIL");
  (* both databases recover the full committed state — truncation lost nothing *)
  let count db tree =
    List.length (Btree.to_list (Btree.open_existing db.Db.benv (Btree.index_id tree)))
  in
  let n_off = count db_off' tree_off and n_on = count db_on' tree_on in
  kv ppf "recovered keys (no daemon / daemon)" "%d / %d (expected %d)" n_off n_on committed;
  if n_off <> committed || n_on <> committed then
    failwith "q11: truncation or recovery lost committed work";
  let ints l = String.concat ", " (List.map string_of_int l) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"log-lifecycle\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- q11\",\n\
      \  \"segment_bytes\": %d,\n\
      \  \"committed_inserts\": %d,\n\
      \  \"no_daemon\": {\n\
      \    \"final_live_bytes\": %d, \"segments\": %d,\n\
      \    \"restart_records_analyzed\": %d,\n\
      \    \"live_bytes_per_batch\": [%s]\n\
      \  },\n\
      \  \"daemon\": {\n\
      \    \"cfg\": { \"every_steps\": 8, \"nudge_pages\": 4, \"truncate\": true },\n\
      \    \"final_live_bytes\": %d, \"segments\": %d, \"archived_segments\": %d,\n\
      \    \"rounds\": %d, \"checkpoints\": %d, \"cleaner_nudges\": %d,\n\
      \    \"truncations\": %d, \"segments_reclaimed\": %d,\n\
      \    \"restart_records_analyzed\": %d, \"records_since_last_ckpt\": %d,\n\
      \    \"live_bytes_per_batch\": [%s]\n\
      \  },\n\
      \  \"acceptance\": {\n\
      \    \"plateau_under_half\": %b,\n\
      \    \"analysis_bounded_by_ckpt\": %b,\n\
      \    \"all_committed_recovered\": %b\n\
      \  }\n\
       }\n"
      seg committed (live db_off)
      (Logmgr.segment_count db_off.Db.wal)
      rep_off.Restart.rp_records_analyzed (ints samples_off) (live db_on)
      (Logmgr.segment_count db_on.Db.wal)
      (Archive.segment_count db_on.Db.archive)
      (Stats.get stats_on Stats.ckptd_rounds)
      (Stats.get stats_on Stats.ckpt_taken)
      (Stats.get stats_on Stats.ckptd_nudges)
      (Stats.get stats_on Stats.log_truncations)
      (Stats.get stats_on Stats.log_segments_reclaimed)
      rep_on.Restart.rp_records_analyzed !since_ckpt (ints samples_on) plateau_ok bound_ok
      (n_off = committed && n_on = committed)
  in
  let oc = open_out "BENCH_PR4.json" in
  output_string oc json;
  close_out oc;
  kv ppf "wrote" "BENCH_PR4.json"

(* Q12: the storage fault layer's cost and coverage — CRC hot-path
   overhead (page codec and log-image load with verification on vs the
   crc.check-disabled meta-fault), automatic media repair latency (records
   rolled forward, scheduler steps, healed transparently through the
   pool's repairer hook), crash-time tail-scan truncation volume under
   torn appends, and a bounded fault sweep digest (the acceptance gate:
   every seed recovers to the oracle or fails typed). Writes
   BENCH_PR5.json. *)
let q12 ppf =
  let module Sim = Aries_sim.Sim in
  let module Swl = Aries_sim.Workload in
  let module Faultdisk = Aries_util.Faultdisk in
  let module Crashpoint = Aries_util.Crashpoint in
  section ppf "Q12: storage faults — CRC overhead, repair latency, tail scan, sweep digest";
  (* -- CRC hot path: a full realistic leaf, encode+decode in a loop -- *)
  let db, tree = fresh ~page_size:4096 () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 1 to 120 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Bufpool.flush_all db.Db.pool;
  let image =
    match Disk.read db.Db.disk (Btree.root_pid tree) with
    | Some p -> Page.encode p
    | None -> failwith "q12: root image missing"
  in
  let iters = 20_000 in
  let timed f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let codec_loop () =
    for _ = 1 to iters do
      ignore (Page.decode ~psize:4096 (Page.encode (Page.decode ~psize:4096 image)))
    done
  in
  let t_on = timed codec_loop in
  Crashpoint.enable_fault Crashpoint.fault_crc_check_disabled;
  let t_off = timed codec_loop in
  Crashpoint.disable_fault Crashpoint.fault_crc_check_disabled;
  let codec_overhead = (t_on -. t_off) /. t_off *. 100.0 in
  kv ppf
    (Printf.sprintf "page codec (%d enc+2dec, %dB image)" iters (Bytes.length image))
    "%.3fs crc-on vs %.3fs crc-off (+%.1f%%)" t_on t_off codec_overhead;
  (* -- CRC on the log-load path: deserialize a sealed-segment image -- *)
  let log = Logmgr.create ~segment_size:4096 () in
  for i = 1 to 2_000 do
    ignore
      (Logmgr.append log
         (Logrec.make ~page:(i mod 64) ~rm_id:1 ~op:1 ~body:(Bytes.make 48 'q') ~txn:i
            ~prev_lsn:Lsn.nil Logrec.Update))
  done;
  Logmgr.flush log;
  let log_img = Logmgr.serialize log in
  let load_iters = 200 in
  let load_loop () =
    for _ = 1 to load_iters do
      ignore (Logmgr.deserialize log_img)
    done
  in
  let l_on = timed load_loop in
  Crashpoint.enable_fault Crashpoint.fault_crc_check_disabled;
  let l_off = timed load_loop in
  Crashpoint.disable_fault Crashpoint.fault_crc_check_disabled;
  let load_overhead = (l_on -. l_off) /. l_off *. 100.0 in
  kv ppf
    (Printf.sprintf "log image load (%dx, %dB, 2000 records)" load_iters
       (Bytes.length log_img))
    "%.3fs crc-on vs %.3fs crc-off (+%.1f%%)" l_on l_off load_overhead;
  (* -- automatic repair latency: rot the root, heal through the pool -- *)
  let rdb = Db.create ~page_size:384 ~segment_size:1024 () in
  let rtree =
    Db.run_exn rdb (fun () ->
        Db.with_txn rdb (fun txn -> Btree.create rdb.Db.benv txn ~name:"bench" ~unique:true))
  in
  Db.run_exn rdb (fun () ->
      Db.with_txn rdb (fun txn ->
          for i = 1 to 200 do
            Btree.insert rtree txn ~value:(v i) ~rid:(rid i)
          done));
  Bufpool.flush_all rdb.Db.pool;
  Db.checkpoint rdb;
  let reclaimed = Db.trim_log rdb in
  let victim = Btree.root_pid rtree in
  Disk.corrupt_flip ~seed:5 rdb.Db.disk victim;
  Bufpool.drop rdb.Db.pool victim;
  let steps = ref 0 in
  let t_repair = ref 0.0 in
  let rows, rstats =
    measured (fun () ->
        Db.run_exn rdb (fun () ->
            let s0 = Sched.steps_now () in
            let t0 = Sys.time () in
            let n = List.length (Btree.to_list rtree) in
            t_repair := Sys.time () -. t0;
            steps := Sched.steps_now () - s0;
            n))
  in
  let repair_records =
    (* re-rot and measure the roll-forward directly for the record count *)
    Disk.corrupt_flip ~seed:6 rdb.Db.disk victim;
    Bufpool.drop rdb.Db.pool victim;
    Db.run_exn rdb (fun () -> Media.auto_repair ~archive:rdb.Db.archive rdb.Db.mgr rdb.Db.pool victim)
  in
  kv ppf "repair: rows read through the heal" "%d (expected 200)" rows;
  kv ppf "repair: quarantines / repairs" "%d / %d"
    (Stats.get rstats Stats.disk_quarantines)
    (Stats.get rstats Stats.disk_repairs);
  kv ppf "repair: records rolled forward (archive + live log)" "%d (log bytes reclaimed %d)"
    repair_records reclaimed;
  kv ppf "repair: latency" "%d scheduler steps, %.4fs wall" !steps !t_repair;
  if rows <> 200 then failwith "q12: repair lost rows";
  (* -- tail-scan truncation volume under torn appends -- *)
  let torn_cfg =
    {
      Faultdisk.eio_read_p = 0.0;
      eio_write_p = 0.0;
      eio_force_p = 0.0;
      bit_flip_p = 0.0;
      torn_write = false;
      torn_append = true;
      stream_shuffle = false;
    }
  in
  let tail_bytes = ref 0 and tail_cuts = ref 0 and tail_runs = 16 in
  for seed = 1 to tail_runs do
    let l = Logmgr.create ~segment_size:4096 () in
    for i = 1 to 20 do
      ignore
        (Logmgr.append l
           (Logrec.make ~page:i ~rm_id:1 ~op:1
              ~body:(Bytes.make (24 + (seed * 7 mod 64)) 'x')
              ~txn:i ~prev_lsn:Lsn.nil Logrec.Update))
    done;
    Logmgr.flush l;
    for i = 21 to 23 do
      ignore
        (Logmgr.append l
           (Logrec.make ~page:i ~rm_id:1 ~op:1 ~body:(Bytes.make 80 'y') ~txn:i
              ~prev_lsn:Lsn.nil Logrec.Update))
    done;
    let (), tstats =
      measured (fun () ->
          Faultdisk.arm ~seed torn_cfg;
          Logmgr.crash l;
          Faultdisk.disarm ())
    in
    tail_bytes := !tail_bytes + Stats.get tstats Stats.log_tail_truncated_bytes;
    tail_cuts := !tail_cuts + Stats.get tstats Stats.log_tail_truncations
  done;
  kv ppf
    (Printf.sprintf "tail scan (%d torn crashes)" tail_runs)
    "%d truncations, %d bytes dropped (%.1fB/crash)" !tail_cuts !tail_bytes
    (float_of_int !tail_bytes /. float_of_int tail_runs);
  (* -- bounded fault sweep digest: the acceptance gate in miniature -- *)
  let sweep_seeds = 12 and sweep_crash_seeds = 2 and sweep_budget = 20 in
  let digest, dstats =
    measured (fun () ->
        Sim.sweep Swl.fault_cfg
          ~seeds:(List.init sweep_seeds (fun i -> i + 1))
          ~crash_seeds:(List.init sweep_crash_seeds (fun i -> 1001 + i))
          ~crash_budget:sweep_budget)
  in
  let fatal = Sim.fatal_failures digest in
  let tolerated = List.length digest.Sim.sm_failures - List.length fatal in
  kv ppf "fault sweep" "%d seed runs, %d crash points, %d fault(s) injected" digest.Sim.sm_seed_runs
    digest.Sim.sm_crash_points
    (Stats.get dstats Stats.disk_eio_injected
    + Stats.get dstats Stats.disk_bit_flips
    + Stats.get dstats Stats.disk_torn_writes);
  kv ppf "fault sweep: retries / quarantines / repairs" "%d / %d / %d"
    (Stats.get dstats Stats.disk_retries)
    (Stats.get dstats Stats.disk_quarantines)
    (Stats.get dstats Stats.disk_repairs);
  kv ppf "fault sweep: fatal / tolerated-typed failures" "%d / %d" (List.length fatal) tolerated;
  List.iter (fun rp -> kv ppf "FATAL" "%s" (Sim.reproducer_line rp)) fatal;
  kv ppf "acceptance: zero fatal failures" "%s" (if fatal = [] then "PASS" else "FAIL");
  if fatal <> [] then failwith "q12: fault sweep found fatal failures";
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"storage-faults\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- q12\",\n\
      \  \"crc_hot_path\": {\n\
      \    \"page_codec\": { \"iters\": %d, \"image_bytes\": %d,\n\
      \      \"crc_on_s\": %.4f, \"crc_off_s\": %.4f, \"overhead_pct\": %.2f },\n\
      \    \"log_image_load\": { \"iters\": %d, \"image_bytes\": %d,\n\
      \      \"crc_on_s\": %.4f, \"crc_off_s\": %.4f, \"overhead_pct\": %.2f }\n\
      \  },\n\
      \  \"auto_repair\": {\n\
      \    \"rows_through_heal\": %d, \"quarantines\": %d, \"repairs\": %d,\n\
      \    \"records_rolled_forward\": %d, \"latency_steps\": %d, \"latency_s\": %.5f,\n\
      \    \"log_bytes_reclaimed_before\": %d\n\
      \  },\n\
      \  \"tail_scan\": { \"torn_crashes\": %d, \"truncations\": %d,\n\
      \    \"bytes_dropped\": %d, \"bytes_per_crash\": %.1f },\n\
      \  \"fault_sweep\": {\n\
      \    \"seed_runs\": %d, \"crash_points\": %d,\n\
      \    \"eio_injected\": %d, \"bit_flips\": %d, \"torn_writes\": %d,\n\
      \    \"retries\": %d, \"quarantines\": %d, \"repairs\": %d,\n\
      \    \"tail_truncations\": %d,\n\
      \    \"fatal_failures\": %d, \"tolerated_typed_failures\": %d\n\
      \  }\n\
       }\n"
      iters (Bytes.length image) t_on t_off codec_overhead load_iters (Bytes.length log_img)
      l_on l_off load_overhead rows
      (Stats.get rstats Stats.disk_quarantines)
      (Stats.get rstats Stats.disk_repairs)
      repair_records !steps !t_repair reclaimed tail_runs !tail_cuts !tail_bytes
      (float_of_int !tail_bytes /. float_of_int tail_runs)
      digest.Sim.sm_seed_runs digest.Sim.sm_crash_points
      (Stats.get dstats Stats.disk_eio_injected)
      (Stats.get dstats Stats.disk_bit_flips)
      (Stats.get dstats Stats.disk_torn_writes)
      (Stats.get dstats Stats.disk_retries)
      (Stats.get dstats Stats.disk_quarantines)
      (Stats.get dstats Stats.disk_repairs)
      (Stats.get dstats Stats.log_tail_truncations)
      (List.length fatal) tolerated
  in
  let oc = open_out "BENCH_PR5.json" in
  output_string oc json;
  close_out oc;
  kv ppf "wrote" "BENCH_PR5.json"

(* Q13: instant restart — time to the first committed new transaction
   after a crash. The same crashed image (save/load) restarts twice:
   classic must finish the Redo and Undo passes before any new work runs;
   instant opens for business after Analysis + loser-lock reacquisition,
   redoing pages on demand and draining the rest in the background. Two
   log shapes: a short log (the fuzzy-checkpoint daemon keeps analysis
   and redo bounded — the PR4 steady state) and an artificially long one
   (checkpoints still run, so analysis stays short and the per-page log
   chains are persisted, but pages are never cleaned: the redo backlog
   spans the whole run and dwarfs the restart buffer pool) where the
   paper's downtime argument predicts the win; the acceptance gate
   requires >= 5x there. Writes BENCH_PR6.json. *)
let q13 ppf =
  let module Ckptd = Aries_recovery.Ckptd in
  section ppf "Q13: instant restart — time to first committed transaction";
  let committed = 5_000 and per_txn = 10 in
  let loser_keys = 20 in
  let build ~long =
    (* long shape: checkpoints keep running (short analysis window, the
       dirty pages' log chains ride in each End_ckpt) but nudge almost
       nothing to disk, and the build pool is big enough that nothing is
       ever evicted — nearly every page's recLSN stays near the log's
       start, so the crashed image owes the whole run as redo work *)
    let checkpoint =
      if long then Some { Ckptd.every_steps = 64; Ckptd.nudge_pages = 1; truncate = true }
      else Some { Ckptd.every_steps = 8; Ckptd.nudge_pages = 4; truncate = true }
    in
    let pool_capacity = if long then 1024 else 128 in
    let db = Db.create ~page_size:384 ~pool_capacity ?checkpoint ~segment_size:2048 () in
    let tree =
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"bench" ~unique:true))
    in
    Db.run_exn db (fun () ->
        for t = 0 to (committed / per_txn) - 1 do
          Db.with_txn db (fun txn ->
              for i = (t * per_txn) + 1 to (t + 1) * per_txn do
                Btree.insert tree txn ~value:(v i) ~rid:(rid i)
              done);
          (* give the checkpoint daemon a turn between transactions *)
          Sched.yield ()
        done;
        (* a loser cut mid-flight: its key locks must be reacquired before
           the instant-restarted Db opens *)
        let t = Txnmgr.begin_txn db.Db.mgr in
        for i = 1 to loser_keys do
          Btree.insert tree t ~value:(v (100_000 + i)) ~rid:(rid (100_000 + i))
        done;
        Logmgr.flush db.Db.wal);
    let img = Filename.temp_file "aries_q13" ".img" in
    Db.save db img;
    (img, Btree.index_id tree)
  in
  let tight = { Restart.dr_every_steps = 1; dr_redo_pages = 8; dr_undo_txns = 1 } in
  (* time from restart start to the first committed new transaction, then
     (instant only) on to the fully drained engine *)
  let time_restart ~instant img ix =
    let db' = Db.load ~pool_capacity:24 img in
    let t_first = ref 0.0 and t_drained = ref 0.0 and pending0 = ref 0 in
    let (rep : Restart.report), stats =
      measured (fun () ->
          Db.run_exn db' (fun () ->
              let t0 = Sys.time () in
              let rep = Db.restart ~instant ~drain:tight db' in
              (match Db.restart_engine db' with
              | Some en when instant -> pending0 := List.length (Restart.pending_redo en)
              | Some _ | None -> ());
              let tree' = Btree.open_existing db'.Db.benv ix in
              Db.with_txn db' (fun txn ->
                  Btree.insert tree' txn ~value:"zzzz-first" ~rid:(rid 99_999));
              t_first := Sys.time () -. t0;
              let rep =
                match Db.restart_engine db' with
                | Some en when instant ->
                    while not (Restart.finished en) do
                      Sched.yield ()
                    done;
                    (* the open-time report predates the drain; the engine's
                       aggregates across every pass *)
                    Restart.report en
                | Some _ | None -> rep
              in
              t_drained := Sys.time () -. t0;
              rep))
    in
    let rows = List.length (Btree.to_list (Btree.open_existing db'.Db.benv ix)) in
    (rep, stats, !t_first, !t_drained, !pending0, rows)
  in
  let ms t = 1000.0 *. t in
  let shape name ~long =
    let img, ix = build ~long in
    let c_rep, _, c_first, _, _, c_rows = time_restart ~instant:false img ix in
    let i_rep, i_stats, i_first, i_drained, i_pending, i_rows =
      time_restart ~instant:true img ix
    in
    Sys.remove img;
    kv ppf (Printf.sprintf "[%s] classic: redos / undos / first-commit" name) "%d / %d / %.2fms"
      c_rep.Restart.rp_redos_applied c_rep.Restart.rp_undo_records (ms c_first);
    kv ppf
      (Printf.sprintf "[%s] instant: pending@open / first-commit / drained" name)
      "%d / %.2fms / %.2fms" i_pending (ms i_first) (ms i_drained);
    kv ppf
      (Printf.sprintf "[%s] instant: on-demand redos / locks reacquired" name)
      "%d / %d"
      (Stats.get i_stats Stats.instant_ondemand_redos)
      (Stats.get i_stats Stats.instant_locks_reacquired);
    if c_rows <> committed + 1 || i_rows <> committed + 1 then
      failwith (Printf.sprintf "q13: %s-log recovery lost rows (%d / %d)" name c_rows i_rows);
    if i_rep.Restart.rp_redos_applied <> c_rep.Restart.rp_redos_applied then
      failwith
        (Printf.sprintf "q13: instant and classic redo different record counts (%d vs %d)"
           i_rep.Restart.rp_redos_applied c_rep.Restart.rp_redos_applied);
    let speedup = c_first /. Float.max i_first 1e-6 in
    kv ppf (Printf.sprintf "[%s] time-to-first-commit speedup" name) "%.1fx" speedup;
    (c_rep, c_first, i_rep, i_stats, i_first, i_drained, i_pending, speedup)
  in
  kv ppf "workload" "%d committed inserts (txns of %d), %d-key loser, pool 24 pages" committed
    per_txn loser_keys;
  let _, s_c_first, _, s_i_stats, s_i_first, s_i_drained, s_pending, s_speed =
    shape "short" ~long:false
  in
  let l_c_rep, l_c_first, l_i_rep, l_i_stats, l_i_first, l_i_drained, l_pending, l_speed =
    shape "long" ~long:true
  in
  let pass = l_speed >= 5.0 in
  kv ppf "acceptance: >= 5x on the long-log workload" "%s" (if pass then "PASS" else "FAIL");
  if not pass then failwith "q13: instant restart under 5x on the long-log workload";
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"instant-restart\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- q13\",\n\
      \  \"workload\": { \"committed_inserts\": %d, \"inserts_per_txn\": %d,\n\
      \    \"loser_keys\": %d, \"restart_pool_pages\": 24 },\n\
      \  \"short_log\": {\n\
      \    \"classic_first_commit_ms\": %.3f,\n\
      \    \"instant_first_commit_ms\": %.3f, \"instant_drained_ms\": %.3f,\n\
      \    \"pending_pages_at_open\": %d, \"ondemand_redos\": %d,\n\
      \    \"locks_reacquired\": %d, \"speedup\": %.2f\n\
      \  },\n\
      \  \"long_log\": {\n\
      \    \"classic_first_commit_ms\": %.3f, \"classic_redos_applied\": %d,\n\
      \    \"classic_undo_records\": %d,\n\
      \    \"instant_first_commit_ms\": %.3f, \"instant_drained_ms\": %.3f,\n\
      \    \"pending_pages_at_open\": %d, \"ondemand_redos\": %d,\n\
      \    \"drain_rounds\": %d, \"locks_reacquired\": %d,\n\
      \    \"redos_applied\": %d, \"speedup\": %.2f\n\
      \  },\n\
      \  \"acceptance\": { \"long_log_speedup_at_least_5x\": %b }\n\
       }\n"
      committed per_txn loser_keys (ms s_c_first) (ms s_i_first) (ms s_i_drained) s_pending
      (Stats.get s_i_stats Stats.instant_ondemand_redos)
      (Stats.get s_i_stats Stats.instant_locks_reacquired)
      s_speed (ms l_c_first) l_c_rep.Restart.rp_redos_applied l_c_rep.Restart.rp_undo_records
      (ms l_i_first) (ms l_i_drained) l_pending
      (Stats.get l_i_stats Stats.instant_ondemand_redos)
      (Stats.get l_i_stats Stats.instant_drain_rounds)
      (Stats.get l_i_stats Stats.instant_locks_reacquired)
      l_i_rep.Restart.rp_redos_applied l_speed pass
  in
  let oc = open_out "BENCH_PR6.json" in
  output_string oc json;
  close_out oc;
  kv ppf "wrote" "BENCH_PR6.json"

(* ------------------------------------------------------------------ *)
(* Q14 (PR 7): multi-stream parallel WAL — commit throughput scaling.

   The same committer workload at N in {1, 2, 4, 8} log streams, group
   commit (batch 16 / 6-step window) with the synthetic per-stream
   log-device model installed ({!Group_commit.set_io_model}): one
   stream's force of [b] unflushed bytes occupies that device for
   [8 + b/24] scheduler steps, and a batch's per-stream forces run
   concurrently against a shared deadline — cost ~max, not sum, which is
   exactly the device parallelism N streams exist to buy. Following Zhou
   et al.'s partially-constrained-log argument, relaxing the total log
   order to per-stream orders plus the commit-epoch fence removes the
   single log tail as the commit bottleneck; the fence (rule R8) is the
   only cross-stream synchronization left on the commit path.

   Acceptance: >= 2x commits/step at N = 4 vs N = 1 with 16 committers.
   Writes BENCH_PR7.json. *)

let q14_cost bytes = 8 + (bytes / 24)

type q14_cell = {
  ms_streams : int;
  ms_fibers : int;
  ms_txns : int;
  ms_steps : int;
  ms_batches : int;
  ms_forces : int;
}

let q14_throughput c = 1000.0 *. float_of_int c.ms_txns /. float_of_int (max 1 c.ms_steps)

let q14_run ~streams ~fibers =
  let db =
    Db.create ~page_size:512 ~streams
      ~commit_mode:(Db.Group { Group_commit.max_batch = 16; max_delay_steps = 6 })
      ()
  in
  (match db.Db.gc with
  | Some gc -> Group_commit.set_io_model gc (Some q14_cost)
  | None -> assert false);
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"q14" ~unique:false))
  in
  let txns_per_fiber = 12 in
  let committed = ref 0 in
  let s = Stats.create () in
  let steps = ref 0 in
  Stats.with_sink s (fun () ->
      let r =
        Db.run db
          ~policy:(Sched.Random ((streams * 100) + fibers))
          ~yield_probability:0.05
          (fun () ->
            for f = 0 to fibers - 1 do
              ignore
                (Sched.spawn
                   ~name:(Printf.sprintf "q14-%02d" f)
                   (fun () ->
                     for t = 1 to txns_per_fiber do
                       let txn = Txnmgr.begin_txn db.Db.mgr in
                       let base = (f * 1_000) + (t * 3) in
                       match
                         Btree.insert tree txn
                           ~value:(Printf.sprintf "f%02d-%04d" f base)
                           ~rid:(rid base);
                         Btree.insert tree txn
                           ~value:(Printf.sprintf "f%02d-%04d" f (base + 1))
                           ~rid:(rid (base + 1))
                       with
                       | () ->
                           Txnmgr.commit db.Db.mgr txn;
                           incr committed
                       | exception Txnmgr.Aborted _ -> ()
                     done))
            done)
      in
      steps := r.Sched.steps);
  {
    ms_streams = streams;
    ms_fibers = fibers;
    ms_txns = !committed;
    ms_steps = !steps;
    ms_batches = Stats.get s Stats.commit_batches;
    ms_forces = Stats.get s Stats.log_forces;
  }

let q14 ppf =
  section ppf "Q14: parallel WAL — commit throughput vs fibers at N streams";
  let stream_counts = [ 1; 2; 4; 8 ] and fiber_counts = [ 2; 4; 8; 16 ] in
  let cells =
    List.concat_map
      (fun streams -> List.map (fun fibers -> q14_run ~streams ~fibers) fiber_counts)
      stream_counts
  in
  List.iter
    (fun c ->
      kv ppf
        (Printf.sprintf "N=%d, %2d committers" c.ms_streams c.ms_fibers)
        "%3d commits in %6d steps = %6.2f commits/kstep (%d batches, %d forces)" c.ms_txns
        c.ms_steps (q14_throughput c) c.ms_batches c.ms_forces)
    cells;
  let cell streams fibers =
    List.find (fun c -> c.ms_streams = streams && c.ms_fibers = fibers) cells
  in
  let speedup =
    q14_throughput (cell 4 16) /. q14_throughput (cell 1 16)
  in
  let pass = speedup >= 2.0 in
  kv ppf "N=4 vs N=1 speedup at 16 committers" "%.2fx (acceptance: >= 2x: %b)" speedup pass;
  if not pass then failwith "q14: N=4 commit throughput did not reach 2x of N=1";
  let cell_json c =
    Printf.sprintf
      "    { \"streams\": %d, \"committers\": %d, \"committed_txns\": %d, \"steps\": %d,\n\
      \      \"commits_per_kstep\": %.3f, \"commit_batches\": %d, \"log_forces\": %d }"
      c.ms_streams c.ms_fibers c.ms_txns c.ms_steps (q14_throughput c) c.ms_batches c.ms_forces
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"parallel-wal\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- q14\",\n\
      \  \"io_model\": \"steps = 8 + bytes/24 per stream force, concurrent across streams\",\n\
      \  \"cells\": [\n%s\n  ],\n\
      \  \"acceptance\": { \"n4_vs_n1_speedup_at_16_committers\": %.3f, \
       \"at_least_2x\": %b }\n\
       }\n"
      (String.concat ",\n" (List.map cell_json cells))
      speedup pass
  in
  let oc = open_out "BENCH_PR7.json" in
  output_string oc json;
  close_out oc;
  kv ppf "wrote" "BENCH_PR7.json"

(* Q15: MVCC snapshot reads — reader lock traffic on a scan-vs-writer mix.

   One reader fiber repeatedly scans a 150-row range of a table while two
   writer fibers churn fetch+delete+reinsert transactions over hot rows of
   the same index, sorted just past the scan's stop bound — so the scan's
   boundary probe (fetch_next locks the next key before noticing it is
   beyond the stop) collides with the writers' commit-duration X locks.
   Reader lock requests and waits are counted from the trace ring
   (Lock_request / Lock_wait events carry the requesting txn id), so the
   writers' own lock traffic is excluded from the reader's bill.

   The locking protocols price every fetched row: data-only locking takes
   the record lock (1 request/row, it doubles as every index's key lock),
   ARIES/KVL and System R lock the index key value and then the record
   (2 requests/row), and any of them can wait at the hot boundary.
   Protocol #5 (Mvcc) resolves every key against the pinned snapshot's
   version chains: no key locks, no record locks, no waits, regardless of
   writer churn (rule R9) — only the table-level IS intent lock remains,
   one request per scan.

   Acceptance: Mvcc < 0.01 reader lock requests/op and 0 reader waits;
   data-only >= 1/op; KVL and System R >= 2/op. Writes BENCH_PR8.json. *)

type q15_cell = {
  sr_locking : Protocol.locking;
  sr_scans : int;
  sr_ops : int;
  sr_requests : int;
  sr_waits : int;
  sr_writer_commits : int;
}

let q15_per_op c = float_of_int c.sr_requests /. float_of_int (max 1 c.sr_ops)

let q15_hot f j = Printf.sprintf "zhot-%d-%02d" f j

let q15_run locking =
  let module Trace = Aries_trace.Trace in
  let config = config_of locking in
  let db = Db.create ~page_size:512 ~config () in
  let specs = [ { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun r -> r.(0)) } ] in
  let tbl =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs))
  in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 149 do
            ignore (Table.insert tbl txn [| Printf.sprintf "scan-%03d" i |])
          done;
          for f = 0 to 1 do
            for j = 0 to 6 do
              ignore (Table.insert tbl txn [| q15_hot f j |])
            done
          done));
  let saved_mode = Trace.mode () and saved_cap = Trace.capacity () in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_mode saved_mode;
      Trace.set_capacity saved_cap)
    (fun () ->
      Trace.set_capacity 262_144;
      Trace.set_mode Trace.Record;
      let readers = Hashtbl.create 8 in
      let ops = ref 0 and scans = ref 0 and writer_commits = ref 0 in
      ignore
        (Db.run db ~policy:(Sched.Random 15) ~yield_probability:0.1 (fun () ->
             (* writers churn their private hot rows: fetch the current rid,
                delete the row, reinsert it (a fresh rid every round) *)
             for f = 0 to 1 do
               ignore
                 (Sched.spawn
                    ~name:(Printf.sprintf "q15-writer-%d" f)
                    (fun () ->
                      for t = 1 to 18 do
                        let key = q15_hot f (t mod 7) in
                        let txn = Txnmgr.begin_txn db.Db.mgr in
                        match
                          match Table.fetch tbl txn ~index:"pk" key with
                          | Some (r, _) ->
                              Table.delete tbl txn r;
                              ignore (Table.insert tbl txn [| key |])
                          | None -> ()
                        with
                        | () ->
                            Txnmgr.commit db.Db.mgr txn;
                            incr writer_commits
                        | exception Txnmgr.Aborted _ -> ()
                      done))
             done;
             ignore
               (Sched.spawn ~name:"q15-reader" (fun () ->
                    for _ = 1 to 6 do
                      let txn = Txnmgr.begin_txn db.Db.mgr in
                      Hashtbl.replace readers txn.Txnmgr.txn_id ();
                      match
                        Table.scan tbl txn ~index:"pk" "scan-" ~stop:("scan-999", `Le) ()
                      with
                      | rows ->
                          ops := !ops + List.length rows;
                          Txnmgr.commit db.Db.mgr txn;
                          incr scans
                      | exception Txnmgr.Aborted _ -> ()
                    done))));
      if Trace.event_count () > Trace.capacity () then
        failwith "q15: trace ring overflowed; raise the capacity";
      let requests = ref 0 and waits = ref 0 in
      List.iter
        (fun (e : Trace.event) ->
          match e.Trace.ev_payload with
          | Trace.Lock_request { txn; _ } when Hashtbl.mem readers txn -> incr requests
          | Trace.Lock_wait { txn; _ } when Hashtbl.mem readers txn -> incr waits
          | _ -> ())
        (Trace.events ());
      {
        sr_locking = locking;
        sr_scans = !scans;
        sr_ops = !ops;
        sr_requests = !requests;
        sr_waits = !waits;
        sr_writer_commits = !writer_commits;
      })

let q15 ppf =
  section ppf "Q15: snapshot reads — reader lock traffic on a scan-vs-writer mix";
  let cells =
    List.map q15_run [ Protocol.Data_only; Protocol.Kvl; Protocol.System_r; Protocol.Mvcc ]
  in
  Format.fprintf ppf "  %-16s %6s %6s %9s %7s %8s %10s@." "protocol" "scans" "ops" "requests"
    "waits" "req/op" "w-commits";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-16s %6d %6d %9d %7d %8.3f %10d@."
        (Protocol.locking_to_string c.sr_locking)
        c.sr_scans c.sr_ops c.sr_requests c.sr_waits (q15_per_op c) c.sr_writer_commits)
    cells;
  let find l = List.find (fun c -> c.sr_locking = l) cells in
  let mvcc = find Protocol.Mvcc in
  let gate what ok = if not ok then failwith ("q15: " ^ what) in
  gate "Mvcc reader issued lock requests (rule R9)" (q15_per_op mvcc < 0.01);
  gate "Mvcc reader waited on a lock (rule R9)" (mvcc.sr_waits = 0);
  gate "data-only reader should pay >= 1 lock request/op"
    (q15_per_op (find Protocol.Data_only) >= 1.0);
  gate "KVL reader should pay >= 2 lock requests/op" (q15_per_op (find Protocol.Kvl) >= 2.0);
  gate "System R reader should pay >= 2 lock requests/op"
    (q15_per_op (find Protocol.System_r) >= 2.0);
  kv ppf "acceptance" "mvcc %.3f req/op + %d waits; others pay the lock bill: ok"
    (q15_per_op mvcc) mvcc.sr_waits;
  let cell_json c =
    Printf.sprintf
      "    { \"protocol\": %S, \"scans\": %d, \"reader_ops\": %d,\n\
      \      \"reader_lock_requests\": %d, \"reader_lock_waits\": %d,\n\
      \      \"requests_per_op\": %.4f, \"writer_commits\": %d }"
      (Protocol.locking_to_string c.sr_locking)
      c.sr_scans c.sr_ops c.sr_requests c.sr_waits (q15_per_op c) c.sr_writer_commits
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"mvcc-snapshot-reads\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- q15\",\n\
      \  \"workload\": \"1 reader fiber x 6 full scans vs 2 writer fibers x 18 \
       delete+reinsert txns over 200 keys\",\n\
      \  \"cells\": [\n%s\n  ],\n\
      \  \"acceptance\": { \"mvcc_requests_per_op\": %.4f, \"mvcc_waits\": %d, \
       \"mvcc_wait_free\": %b }\n\
       }\n"
      (String.concat ",\n" (List.map cell_json cells))
      (q15_per_op mvcc) mvcc.sr_waits
      (q15_per_op mvcc < 0.01 && mvcc.sr_waits = 0)
  in
  let oc = open_out "BENCH_PR8.json" in
  output_string oc json;
  close_out oc;
  kv ppf "wrote" "BENCH_PR8.json"

(* Q16: the hot-path speed pass, measured end to end.

   Four claims, four gates:
   - raw CRC throughput: the slice-by-16 [Crc.update] must beat the
     one-table bytewise baseline ([Crc.update_bytewise], the pre-pass
     implementation) by >= 4x.  Min-of-5 timing per engine — micro
     noise only ever adds time, so the minimum is the honest estimate.
   - page codec CRC overhead: BENCH_PR5.json recorded +51% for
     checks-on vs checks-off before the pass; the fast CRC must cut
     that to <= 25.5% (half) on the same encode+2xdecode loop.
   - log append allocation: the per-manager encode arena must be
     reused on every steady-state append (no per-record buffer), with
     minor-heap words/append reported as evidence.
   - image cache: a probe storm over clean resident pages must be
     all hits — zero re-encodes, zero stale entries.
   The log-image load overhead (tail-scan CRC path) is re-measured and
   reported for the EXPERIMENTS.md before/after table but not gated:
   its baseline varies too much run to run.  Writes BENCH_PR9.json. *)
let q16 ppf =
  section ppf "Q16: hot-path speed pass — fast CRC, cached images, allocation-free encode";
  let timed f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let min_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let t = timed f in
      if t < !best then best := t
    done;
    !best
  in
  (* time the same loop with CRC checks on and off, as interleaved pairs:
     one on-sample then one off-sample per round, min of each.  Two
     separate blocks would let GC drift between them masquerade as CRC
     cost — the overhead here is a few tens of ms against a baseline that
     allocates the same hundreds of MB either way. *)
  let on_off n f =
    let module Crashpoint = Aries_util.Crashpoint in
    let t_on = ref infinity and t_off = ref infinity in
    for _ = 1 to n do
      let t = timed f in
      if t < !t_on then t_on := t;
      Crashpoint.enable_fault Crashpoint.fault_crc_check_disabled;
      let t = timed f in
      Crashpoint.disable_fault Crashpoint.fault_crc_check_disabled;
      if t < !t_off then t_off := t
    done;
    (!t_on, !t_off)
  in
  (* -- raw CRC throughput: slice-by-16 vs the bytewise baseline -- *)
  let buf_len = 4 * 1024 * 1024 in
  let buf = Bytes.create buf_len in
  let st = ref 123456789 in
  for i = 0 to buf_len - 1 do
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    Bytes.unsafe_set buf i (Char.chr (!st land 0xFF))
  done;
  let s = Bytes.unsafe_to_string buf in
  let passes = 16 in
  let crc_run f =
    let c = ref 0 in
    fun () ->
      for _ = 1 to passes do
        c := f !c s 0 buf_len
      done
  in
  if Crc.update 0 s 0 buf_len <> Crc.update_bytewise 0 s 0 buf_len then
    failwith "q16: CRC engines disagree";
  ignore (timed (crc_run Crc.update));
  ignore (timed (crc_run Crc.update_bytewise));
  let t_fast = min_of 5 (crc_run Crc.update) in
  let t_slow = min_of 5 (crc_run Crc.update_bytewise) in
  let speedup = t_slow /. t_fast in
  let mib = float_of_int (buf_len * passes) /. (1024.0 *. 1024.0) in
  kv ppf
    (Printf.sprintf "crc throughput (%d MiB x%d passes, min of 5)" (buf_len / 1024 / 1024)
       passes)
    "slice-by-16 %.0f MiB/s vs bytewise %.0f MiB/s (%.2fx)" (mib /. t_fast) (mib /. t_slow)
    speedup;
  if speedup < 4.0 then failwith "q16: CRC speedup below the 4x gate";
  (* -- page codec overhead after the pass (same loop as Q12) -- *)
  let db, tree = fresh ~page_size:4096 () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 1 to 120 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  Bufpool.flush_all db.Db.pool;
  let image =
    match Disk.read db.Db.disk (Btree.root_pid tree) with
    | Some p -> Page.encode p
    | None -> failwith "q16: root image missing"
  in
  let iters = 20_000 in
  let codec_loop () =
    for _ = 1 to iters do
      ignore (Page.decode ~psize:4096 (Page.encode (Page.decode ~psize:4096 image)))
    done
  in
  ignore (timed codec_loop);
  let t_on, t_off = on_off 3 codec_loop in
  let codec_overhead = (t_on -. t_off) /. t_off *. 100.0 in
  kv ppf
    (Printf.sprintf "page codec (%d enc+2dec, %dB image, min of 3)" iters (Bytes.length image))
    "%.3fs crc-on vs %.3fs crc-off (+%.1f%%, was +51%% in BENCH_PR5)" t_on t_off codec_overhead;
  if codec_overhead > 25.5 then failwith "q16: page codec CRC overhead above the 25.5% gate";
  (* -- log image load (tail-scan CRC path), reported not gated -- *)
  let llog = Logmgr.create ~segment_size:4096 () in
  for i = 1 to 2_000 do
    ignore
      (Logmgr.append llog
         (Logrec.make ~page:(i mod 64) ~rm_id:1 ~op:1 ~body:(Bytes.make 48 'q') ~txn:i
            ~prev_lsn:Lsn.nil Logrec.Update))
  done;
  Logmgr.flush llog;
  let log_img = Logmgr.serialize llog in
  let load_iters = 200 in
  let load_loop () =
    for _ = 1 to load_iters do
      ignore (Logmgr.deserialize log_img)
    done
  in
  ignore (timed load_loop);
  let l_on, l_off = on_off 3 load_loop in
  let load_overhead = (l_on -. l_off) /. l_off *. 100.0 in
  kv ppf
    (Printf.sprintf "log image load (%dx, %dB, 2000 records, min of 3)" load_iters
       (Bytes.length log_img))
    "%.3fs crc-on vs %.3fs crc-off (+%.1f%%)" l_on l_off load_overhead;
  (* -- log append: arena reuse on every steady-state append -- *)
  let alog = Logmgr.create ~segment_size:65536 () in
  let body = Bytes.make 48 'q' in
  ignore
    (Logmgr.append alog
       (Logrec.make ~page:1 ~rm_id:1 ~op:1 ~body ~txn:1 ~prev_lsn:Lsn.nil Logrec.Update));
  let appends = 10_000 in
  let astats = Stats.create () in
  let minor0 = Gc.minor_words () in
  Stats.with_sink astats (fun () ->
      for i = 1 to appends do
        ignore
          (Logmgr.append alog
             (Logrec.make ~page:(i mod 64) ~rm_id:1 ~op:1 ~body ~txn:i ~prev_lsn:Lsn.nil
                Logrec.Update))
      done);
  let minor1 = Gc.minor_words () in
  let words_per_append = (minor1 -. minor0) /. float_of_int appends in
  let reuses = Stats.get astats Stats.wal_encode_arena_reuses in
  kv ppf
    (Printf.sprintf "log append (%d appends after warm-up)" appends)
    "%d arena reuses, %.1f minor words/append" reuses words_per_append;
  if reuses < appends then failwith "q16: encode arena not reused on steady-state appends";
  (* -- image cache: probe storm over clean resident pages -- *)
  let pids = Bufpool.resident_pids db.Db.pool in
  List.iter (fun pid -> ignore (Bufpool.page_image db.Db.pool pid)) pids;
  let probes = 100 in
  let cstats = Stats.create () in
  Stats.with_sink cstats (fun () ->
      for _ = 1 to probes do
        List.iter (fun pid -> ignore (Bufpool.page_image db.Db.pool pid)) pids
      done);
  let hits = Stats.get cstats Stats.bufpool_image_hits in
  let misses = Stats.get cstats Stats.bufpool_image_misses in
  let stale = Bufpool.image_cache_stale db.Db.pool in
  kv ppf
    (Printf.sprintf "image cache (%d pages x%d probes)" (List.length pids) probes)
    "%d hits, %d misses, %d stale" hits misses stale;
  if misses > 0 then failwith "q16: clean-page probe storm re-encoded a page";
  if stale > 0 then failwith "q16: stale cached images after the storm";
  if hits <> List.length pids * probes then failwith "q16: probe storm hit count off";
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"hot-path-speed-pass\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- q16\",\n\
      \  \"crc_throughput\": {\n\
      \    \"buffer_mib\": %d, \"passes\": %d,\n\
      \    \"slice_by_16_mib_s\": %.1f, \"bytewise_mib_s\": %.1f,\n\
      \    \"speedup\": %.2f, \"gate_min_speedup\": 4.0 },\n\
      \  \"page_codec\": { \"iters\": %d, \"image_bytes\": %d,\n\
      \    \"crc_on_s\": %.4f, \"crc_off_s\": %.4f, \"overhead_pct\": %.2f,\n\
      \    \"gate_max_pct\": 25.5, \"pr5_overhead_pct\": 51.0 },\n\
      \  \"log_image_load\": { \"iters\": %d, \"image_bytes\": %d,\n\
      \    \"crc_on_s\": %.4f, \"crc_off_s\": %.4f, \"overhead_pct\": %.2f },\n\
      \  \"log_append\": { \"appends\": %d, \"arena_reuses\": %d,\n\
      \    \"minor_words_per_append\": %.1f },\n\
      \  \"image_cache\": { \"pages\": %d, \"probes\": %d,\n\
      \    \"hits\": %d, \"misses\": %d, \"stale\": %d }\n\
       }\n"
      (buf_len / 1024 / 1024) passes (mib /. t_fast) (mib /. t_slow) speedup iters
      (Bytes.length image) t_on t_off codec_overhead load_iters (Bytes.length log_img) l_on
      l_off load_overhead appends reuses words_per_append (List.length pids) probes hits misses
      stale
  in
  let oc = open_out "BENCH_PR9.json" in
  output_string oc json;
  close_out oc;
  kv ppf "wrote" "BENCH_PR9.json"

(* ------------------------------------------------------------------ *)
(* Q17 (PR 10): sharded Db + presumed-abort 2PC.

   Three claims, three gates:
   - commit cost: a cross-shard commit pays exactly the presumed-abort
     force budget — per participant a forced Prepare plus a forced
     Commit (the ack lets the coordinator forget the gid, so the commit
     must be stable first), plus the coordinator's forced decision:
     2P+1 where a single-shard commit pays one force. Gated on the
     measured forces-per-commit of both shapes; wall-clock throughput
     is reported, not gated.
   - in-doubt resolution latency: branches prepared on two shards when
     the whole cluster dies must be restored in-doubt by restart and
     resolved (abort by presumption — no decision survived) before
     restart returns; same again when only the {e coordinator} dies and
     is revived. Gated on every in-doubt resolved and a clean cluster
     leak report. Latency is reported in scheduler steps.
   - robustness: a bounded sharded crash/kill/degrade sweep (the same
     rig as [sim smoke --shards]) must be failure-free.
   Writes BENCH_PR10.json. *)
let q17 ppf =
  section ppf "Q17: sharded 2PC — commit cost, in-doubt latency, fault sweep";
  let module Sharddb = Aries_shard.Sharddb in
  let module Twopc = Aries_shard.Twopc in
  let module Shardsim = Aries_sim.Shardsim in
  let module Sched = Aries_sched.Sched in
  let run_ok t f =
    let r = Sharddb.run t ~policy:Sched.Fifo f in
    (match r.Sched.exns with
    | [] -> ()
    | (_, name, e) :: _ ->
        failwith (Printf.sprintf "q17: fiber %s died: %s" name (Printexc.to_string e)));
    match r.Sched.outcome with
    | Sched.Completed -> ()
    | _ -> failwith "q17: workload did not complete"
  in
  (* -- commit cost: single-shard vs cross-shard -- *)
  let t = Sharddb.create ~shards:3 ~page_size:640 ~pool_capacity:32 () in
  run_ok t (fun () -> Sharddb.setup t);
  (* [n] values routed to shard [k], distinct from anything in [used] *)
  let vals_on k n =
    let rec go i acc m =
      if m = 0 then List.rev acc
      else
        let v = Printf.sprintf "q17-%05d" i in
        if Sharddb.shard_of t v = k then go (i + 1) (v :: acc) (m - 1) else go (i + 1) acc m
    in
    go (k * 100_000) [] n
  in
  let ntxns = 200 in
  let srid =
    let c = ref 0 in
    fun () ->
      incr c;
      { Ids.rid_page = 310_000; rid_slot = !c }
  in
  let commit_batch pairs =
    let stats = Stats.create () in
    let t0 = Sys.time () in
    Stats.with_sink stats (fun () ->
        run_ok t (fun () ->
            ignore
              (Sched.spawn ~name:"commits" (fun () ->
                   List.iter
                     (fun (a, b) ->
                       let g = Sharddb.begin_gtxn t in
                       Sharddb.insert t g ~value:a ~rid:(srid ());
                       Sharddb.insert t g ~value:b ~rid:(srid ());
                       Sharddb.commit t g)
                     pairs))));
    (Sys.time () -. t0, Stats.get stats Stats.log_forces, Stats.get stats Stats.txn_prepares)
  in
  let on0 = vals_on 0 (2 * ntxns) in
  let single_pairs =
    List.init ntxns (fun i -> (List.nth on0 (2 * i), List.nth on0 ((2 * i) + 1)))
  in
  let cross_pairs = List.combine (vals_on 1 ntxns) (vals_on 2 ntxns) in
  let s_time, s_forces, s_prepares = commit_batch single_pairs in
  let x_time, x_forces, x_prepares = commit_batch cross_pairs in
  let per n v = float_of_int v /. float_of_int n in
  let tput time = float_of_int ntxns /. (if time <= 0.0 then epsilon_float else time) in
  kv ppf
    (Printf.sprintf "single-shard commit (%d txns, 2 keys each)" ntxns)
    "%.0f txns/s, %.2f forces/commit" (tput s_time) (per ntxns s_forces);
  kv ppf
    (Printf.sprintf "cross-shard commit (%d txns, 2 shards each)" ntxns)
    "%.0f txns/s, %.2f forces/commit (%d prepares)" (tput x_time) (per ntxns x_forces)
    x_prepares;
  if s_prepares <> 0 then failwith "q17: single-shard commits should never prepare";
  if x_prepares <> 2 * ntxns then failwith "q17: cross-shard commits must prepare every branch";
  (* presumed-abort force budget: 1 per single-shard commit; 2P+1 (= 5
     here) per cross-shard commit — prepare + commit force per
     participant, decision force on the coordinator *)
  if s_forces <> ntxns then failwith "q17: single-shard commit force budget off";
  if x_forces <> 5 * ntxns then failwith "q17: cross-shard commit force budget off";
  Sharddb.close t;
  (* -- in-doubt resolution latency -- *)
  (* prepare a cross-shard transaction by hand (phase 1 only), then lose
     the decision two ways: the whole cluster dies, or just the
     coordinator dies and is revived. *)
  let prep () =
    let t = Sharddb.create ~shards:2 ~page_size:640 ~pool_capacity:32 () in
    run_ok t (fun () -> Sharddb.setup t);
    (* two values this cluster's router sends to different shards *)
    let pv i = Printf.sprintf "q17p-%03d" i in
    let rec hunt i =
      if Sharddb.shard_of t (pv i) <> Sharddb.shard_of t (pv 0) then (pv 0, pv i)
      else hunt (i + 1)
    in
    let a, b = hunt 1 in
    let coord = ref 0 in
    run_ok t (fun () ->
        ignore
          (Sched.spawn ~name:"prep" (fun () ->
               let g = Sharddb.begin_gtxn t in
               Sharddb.insert t g ~value:a ~rid:{ Ids.rid_page = 311_000; rid_slot = 1 };
               Sharddb.insert t g ~value:b ~rid:{ Ids.rid_page = 311_000; rid_slot = 2 };
               coord := Sharddb.shard_of t a;
               List.iter
                 (fun k ->
                   let tx = Sharddb.local t g k in
                   Txnmgr.prepare
                     ~meta:(Twopc.encode_prepare_meta ~gid:(Sharddb.gid g) ~coord:!coord)
                     (Sharddb.db t k).Db.mgr tx)
                 (Sharddb.participants g))));
    (t, !coord)
  in
  let t1, _ = prep () in
  Sharddb.crash t1;
  let stats1 = Stats.create () in
  let restart_ms = ref 0.0 and restart_resolved = ref 0 in
  Stats.with_sink stats1 (fun () ->
      run_ok t1 (fun () ->
          ignore
            (Sched.spawn ~name:"restart" (fun () ->
                 let t0 = Sys.time () in
                 let _, resolved = Sharddb.restart t1 in
                 restart_ms := (Sys.time () -. t0) *. 1000.0;
                 restart_resolved := resolved;
                 if Sharddb.leak_report t1 <> [] then failwith "q17: post-restart leak"))));
  kv ppf "cluster crash with 2 in-doubt branches"
    "restored %d, resolved %d inline in %.2fms (presumed abort)"
    (Stats.get stats1 Stats.txn_indoubt_restored)
    !restart_resolved !restart_ms;
  if !restart_resolved <> 2 || Stats.get stats1 Stats.txn_indoubt_restored <> 2 then
    failwith "q17: cluster restart must restore and resolve both in-doubt branches";
  Sharddb.close t1;
  let t2, coord = prep () in
  let stats2 = Stats.create () in
  let revive_ms = ref 0.0 and parked_resolved = ref 0 and down_resolved = ref 0 in
  Stats.with_sink stats2 (fun () ->
      run_ok t2 (fun () ->
          ignore
            (Sched.spawn ~name:"coord-crash" (fun () ->
                 Sharddb.kill t2 coord;
                 (* the participant's branch stays parked: its coordinator
                    is down, aborting by presumption now would be wrong *)
                 down_resolved := Sharddb.resolve_indoubts t2;
                 let t0 = Sys.time () in
                 ignore (Sharddb.revive t2 coord);
                 revive_ms := (Sys.time () -. t0) *. 1000.0;
                 parked_resolved := Sharddb.resolve_indoubts t2;
                 if Sharddb.leak_report t2 <> [] then failwith "q17: post-revive leak"))));
  kv ppf "coordinator fail-stop, then revive"
    "parked while down (resolved %d), revive resolved all in %.2fms" !down_resolved !revive_ms;
  if !down_resolved <> 0 then
    failwith "q17: in-doubt branch resolved while its coordinator was down";
  if Stats.get stats2 Stats.txn_indoubt_resolved < 2 then
    failwith "q17: revive must resolve both in-doubt branches";
  Sharddb.close t2;
  (* -- zero-fatal sharded fault sweep (the sim smoke rig, small budget) -- *)
  let sweep =
    Shardsim.sweep Shardsim.default_cfg ~seeds:[ 1; 2 ] ~crash_seeds:[ 1001 ] ~crash_budget:9
  in
  kv ppf "sharded fault sweep (2 seeds, 1 crash seed x <=9 points)"
    "%d runs, %d acked, %d in-doubt resolved, %d failure(s)" sweep.Shardsim.ss_runs
    sweep.Shardsim.ss_acked sweep.Shardsim.ss_resolved
    (List.length sweep.Shardsim.ss_failures);
  List.iter
    (fun rp -> kv ppf "  FAILURE" "%s" (Shardsim.reproducer_line rp))
    sweep.Shardsim.ss_failures;
  if sweep.Shardsim.ss_failures <> [] then failwith "q17: sharded fault sweep not clean";
  if sweep.Shardsim.ss_acked = 0 then failwith "q17: sweep acknowledged no commits";
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"sharded-2pc\",\n\
      \  \"generated_by\": \"dune exec bench/main.exe -- q17\",\n\
      \  \"commit_cost\": {\n\
      \    \"txns_per_shape\": %d,\n\
      \    \"single_shard\": { \"txns_per_s\": %.0f, \"forces_per_commit\": %.2f },\n\
      \    \"cross_shard\": { \"txns_per_s\": %.0f, \"forces_per_commit\": %.2f,\n\
      \      \"prepares\": %d },\n\
      \    \"cross_cost_ratio\": %.2f,\n\
      \    \"gate\": \"forces = 1 single, 2P+1 cross\" },\n\
      \  \"indoubt_resolution\": {\n\
      \    \"cluster_crash\": { \"restored\": %d, \"resolved\": %d, \"ms\": %.3f },\n\
      \    \"coordinator_failstop\": { \"resolved_while_down\": %d,\n\
      \      \"revive_ms\": %.3f, \"resolved_after_revive\": %d },\n\
      \    \"gate\": \"all in-doubts resolved, zero leaks\" },\n\
      \  \"fault_sweep\": { \"runs\": %d, \"acked\": %d, \"resolved\": %d,\n\
      \    \"failures\": %d, \"gate_max_failures\": 0 }\n\
       }\n"
      ntxns (tput s_time) (per ntxns s_forces) (tput x_time) (per ntxns x_forces) x_prepares
      (per ntxns x_forces /. per ntxns s_forces)
      (Stats.get stats1 Stats.txn_indoubt_restored)
      !restart_resolved !restart_ms !down_resolved !revive_ms
      (Stats.get stats2 Stats.txn_indoubt_resolved)
      sweep.Shardsim.ss_runs sweep.Shardsim.ss_acked sweep.Shardsim.ss_resolved
      (List.length sweep.Shardsim.ss_failures)
  in
  let oc = open_out "BENCH_PR10.json" in
  output_string oc json;
  close_out oc;
  kv ppf "wrote" "BENCH_PR10.json"

let all : (string * (Format.formatter -> unit)) list =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e7", e7);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("q1", q1);
    ("q2", q2);
    ("q3", q3);
    ("q4", q4);
    ("q5", q5);
    ("q6", q6);
    ("q7", q7);
    ("q8", q8);
    ("q9", q9);
    ("q10", q10);
    ("q11", q11);
    ("q12", q12);
    ("q13", q13);
    ("q14", q14);
    ("q15", q15);
    ("q16", q16);
    ("q17", q17);
  ]
